"""The timed participant RPC must never drop an RTT observation.

GeoTP's latency monitor learns passively from every commit-ack round trip; a
reply event that was already processed when ``timed_request_participant``
inspected it used to lose its sample silently (``event.callbacks is None``).
"""

from repro.middleware.middleware import MiddlewareBase, ParticipantHandle
from repro.sim.environment import Environment


class _RecordingMiddleware(MiddlewareBase):
    """Just enough middleware to drive ``timed_request_participant``."""

    def __init__(self, env, reply_event):
        # Deliberately skip MiddlewareBase.__init__: the RPC timing path only
        # needs the clock and the two methods stubbed below.
        self.env = env
        self._reply_event = reply_event
        self.rtt_samples = []

    def request_participant(self, handle, msg_type, payload):
        return self._reply_event

    def record_network_rtt(self, participant, rtt_ms):
        self.rtt_samples.append((participant, rtt_ms))


HANDLE = ParticipantHandle(name="ds0", endpoint="ds0")


def test_pending_reply_records_rtt_when_the_event_fires():
    env = Environment()
    reply = env.event()
    middleware = _RecordingMiddleware(env, reply)
    middleware.timed_request_participant(HANDLE, "xa_prepare", {})
    assert middleware.rtt_samples == []  # nothing observed yet
    reply.succeed({"status": "ok"})
    env.run(until=27.0)
    assert middleware.rtt_samples == [("ds0", 0.0)]


def test_already_processed_reply_still_records_a_sample():
    env = Environment()
    reply = env.event()
    reply.succeed({"status": "ok"})
    env.run(until=5.0)  # the event is processed: its callback list is gone
    assert reply.callbacks is None
    middleware = _RecordingMiddleware(env, reply)
    middleware.timed_request_participant(HANDLE, "xa_commit", {})
    assert middleware.rtt_samples == [("ds0", 0.0)]


def test_sample_reflects_elapsed_simulated_time():
    env = Environment()
    reply = env.event()
    middleware = _RecordingMiddleware(env, reply)

    def scenario():
        middleware.timed_request_participant(HANDLE, "xa_prepare", {})
        yield env.timeout(13.0)
        reply.succeed({"status": "ok"})
        yield env.timeout(1.0)

    env.process(scenario())
    env.run(until=20.0)
    assert middleware.rtt_samples == [("ds0", 13.0)]
