"""Failure injection helpers for the recovery tests and examples.

Two failure modes from the paper are supported: crashing the database
middleware (it is stateless apart from its decision log) and crashing a data
source (which loses all branches that had not reached the prepared state).
"""

from __future__ import annotations

from typing import Dict

from repro import protocol
from repro.middleware.middleware import MiddlewareBase
from repro.sim.environment import Environment
from repro.sim.network import Network, NetworkInterface
from repro.storage.datasource import DataSource


class FailureInjector:
    """Crashes and restarts simulated nodes."""

    def __init__(self, env: Environment, network: Network):
        self.env = env
        self.network = network
        self.net: NetworkInterface = network.interface("failure-injector")
        self.injected: Dict[str, int] = {}

    def crash_middleware(self, middleware: MiddlewareBase) -> None:
        """Crash a middleware: it stops reacting to replies and async messages.

        The middleware is stateless (its in-flight coordinator processes are
        abandoned); only the flushed decision log survives, exactly as §V-A
        assumes.
        """
        middleware.crashed = True
        middleware.active_contexts.clear()
        self.injected["middleware"] = self.injected.get("middleware", 0) + 1

    def restart_middleware(self, middleware: MiddlewareBase) -> None:
        """Bring a crashed middleware back (with an empty in-memory state)."""
        middleware.crashed = False

    def crash_datasource(self, datasource: DataSource):
        """Generator: crash a data source node (yields until acknowledged)."""
        self.injected["datasource"] = self.injected.get("datasource", 0) + 1
        reply = yield self.net.request(datasource.name, protocol.MSG_CRASH, {})
        return reply

    def restart_datasource(self, datasource: DataSource):
        """Generator: restart a crashed data source."""
        reply = yield self.net.request(datasource.name, protocol.MSG_RESTART, {})
        return reply
