"""Unit and property tests for the hotspot footprint (Eq. 4, 5, 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HotspotFootprint


R1 = ("usertable", 1)
R2 = ("usertable", 2)
R3 = ("orders", (1, 5))


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        HotspotFootprint(capacity=0)
    with pytest.raises(ValueError):
        HotspotFootprint(alpha=1.5)


def test_access_counters_track_start_end_commit():
    footprint = HotspotFootprint()
    footprint.on_access_start([R1, R2])
    entry = footprint.entry(R1)
    assert entry.t_cnt == 1
    assert entry.a_cnt == 1
    footprint.on_access_end([R1, R2], committed=True)
    assert entry.a_cnt == 0
    assert entry.c_cnt == 1

    footprint.on_access_start([R1])
    footprint.on_access_end([R1], committed=False)
    assert footprint.entry(R1).t_cnt == 2
    assert footprint.entry(R1).c_cnt == 1


def test_access_end_for_unknown_record_is_noop():
    footprint = HotspotFootprint()
    footprint.on_access_end([("nope", 1)], committed=True)
    assert footprint.entry(("nope", 1)) is None


def test_latency_update_bootstraps_with_uniform_shares():
    footprint = HotspotFootprint(alpha=0.5)
    footprint.update_latency([R1, R2], 100.0)
    # Each record gets half of the observation, folded with alpha = 0.5.
    assert footprint.entry(R1).w_lat == pytest.approx(25.0)
    assert footprint.entry(R2).w_lat == pytest.approx(25.0)


def test_latency_update_weights_by_existing_w_lat():
    footprint = HotspotFootprint(alpha=0.0)  # no smoothing: w_lat = new observation share
    footprint.update_latency([R1], 100.0)    # R1.w_lat = 100
    footprint.update_latency([R2], 20.0)     # R2.w_lat = 20
    footprint.update_latency([R1, R2], 60.0)
    # R1 share = 100/120, R2 share = 20/120.
    assert footprint.entry(R1).w_lat == pytest.approx(50.0)
    assert footprint.entry(R2).w_lat == pytest.approx(10.0)


def test_forecast_sums_w_lat_of_known_records_only():
    footprint = HotspotFootprint(alpha=0.0)
    footprint.update_latency([R1], 40.0)
    footprint.update_latency([R2], 10.0)
    assert footprint.forecast_local_latency([R1, R2]) == pytest.approx(50.0)
    assert footprint.forecast_local_latency([R1, ("unknown", 9)]) == pytest.approx(40.0)
    assert footprint.forecast_local_latency([]) == 0.0


def test_success_probability_follows_eq9():
    footprint = HotspotFootprint()
    # Record with 50% historical commit ratio and 3 concurrent accessors.
    entry = footprint.get_or_create(R1)
    entry.t_cnt, entry.c_cnt, entry.a_cnt = 10, 5, 3
    # (c/t)^(a-1) = 0.5^2 = 0.25
    assert footprint.success_probability([R1]) == pytest.approx(0.25)
    assert footprint.abort_probability([R1]) == pytest.approx(0.75)


def test_success_probability_is_one_without_contention():
    footprint = HotspotFootprint()
    entry = footprint.get_or_create(R1)
    entry.t_cnt, entry.c_cnt, entry.a_cnt = 10, 5, 1  # exponent max(0, 0) = 0
    assert footprint.success_probability([R1]) == 1.0
    # Unknown records contribute nothing.
    assert footprint.success_probability([("other", 1)]) == 1.0


def test_lru_eviction_respects_capacity_and_prefers_idle_records():
    footprint = HotspotFootprint(capacity=2)
    footprint.on_access_start([R1])          # R1 in use
    footprint.get_or_create(R2)
    footprint.get_or_create(R3)              # forces eviction; R2 idle -> evicted
    assert len(footprint) == 2
    assert R1 in footprint
    assert R3 in footprint
    assert R2 not in footprint
    assert footprint.evictions == 1


def test_range_lookup_by_table_via_avl_index():
    footprint = HotspotFootprint()
    footprint.get_or_create(("a_table", 1))
    footprint.get_or_create(("a_table", 2))
    footprint.get_or_create(("z_table", 1))
    assert set(footprint.range_lookup("a_table")) == {("a_table", 1), ("a_table", 2)}
    assert footprint.range_lookup("missing") == []


def test_memory_bytes_and_hottest():
    footprint = HotspotFootprint()
    footprint.on_access_start([R1, R2])
    footprint.on_access_start([R1])
    assert footprint.memory_bytes() == 2 * 96
    hottest = footprint.hottest(1)
    assert hottest[0].record_id == R1


@given(observations=st.lists(
    st.tuples(st.booleans(), st.floats(min_value=0, max_value=1000)), min_size=1))
@settings(max_examples=60, deadline=None)
def test_property_w_lat_never_negative_and_bounded(observations):
    footprint = HotspotFootprint(alpha=0.7)
    max_seen = 0.0
    for use_both, latency in observations:
        records = [R1, R2] if use_both else [R1]
        footprint.update_latency(records, latency)
        max_seen = max(max_seen, latency)
    for record in (R1, R2):
        entry = footprint.entry(record)
        if entry is not None:
            assert entry.w_lat >= 0
            assert entry.w_lat <= max_seen + 1e-6


@given(counts=st.lists(st.tuples(
    st.integers(min_value=0, max_value=50),   # commits
    st.integers(min_value=0, max_value=50),   # aborts
    st.integers(min_value=0, max_value=10)),  # concurrent accessors
    min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_property_abort_probability_in_unit_interval(counts):
    footprint = HotspotFootprint()
    records = []
    for index, (commits, aborts, active) in enumerate(counts):
        record = ("t", index)
        records.append(record)
        entry = footprint.get_or_create(record)
        entry.c_cnt = commits
        entry.t_cnt = commits + aborts
        entry.a_cnt = active
    probability = footprint.abort_probability(records)
    assert 0.0 <= probability <= 1.0
