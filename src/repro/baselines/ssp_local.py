"""SSP (local): ShardingSphere's non-atomic "local" transaction mode.

The paper uses this mode to show SSP's peak performance: it "employs a
decentralized commit protocol but allows transactions to be committed when data
sources return different votes".  Concretely the middleware skips the prepare
phase and asks every participant to commit its branch independently (one WAN
round trip), accepting that a participant may fail to commit after others
already did — atomicity is not guaranteed.
"""

from __future__ import annotations

from repro.common import AbortReason, TxnOutcome
from repro import protocol
from repro.middleware.context import TransactionContext, TransactionPhase
from repro.middleware.coordinator import TwoPhaseCommitCoordinator
from repro.plugins import BuildContext, SystemPlugin, register_system


class SSPLocalCoordinator(TwoPhaseCommitCoordinator):
    """SSP without the prepare phase (no atomicity guarantee)."""

    system_name = "SSP(local)"

    def _commit_distributed(self, ctx: TransactionContext):
        yield from self._flush_decision_log(ctx, commit=True)
        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        acks = []
        for name in ctx.participants:
            handle = self.participants[name]
            acks.append(self.timed_request_participant(
                handle, protocol.MSG_COMMIT_ONE_PHASE,
                {"xid": ctx.branch_xid(name)}))
        condition = yield self.env.all_of(acks)
        replies = [condition[ack] for ack in acks]
        failed = [r for r in replies
                  if not (isinstance(r, dict) and r.get("status") == "ok")]
        if failed and len(failed) == len(replies):
            # Every branch failed to commit: report an abort.  Partial commits
            # are reported as committed — that is precisely the atomicity gap
            # of this mode.
            return TxnOutcome.ABORTED, AbortReason.FAILURE
        return TxnOutcome.COMMITTED, None


# ------------------------------------------------------------------- plugin
def _build(ctx: BuildContext) -> SSPLocalCoordinator:
    return SSPLocalCoordinator(ctx.env, ctx.network, ctx.middleware_config,
                               ctx.participants, ctx.partitioner)


register_system(SystemPlugin(
    name="ssp_local",
    description="ShardingSphere's non-atomic local transaction mode (no prepare)",
    aliases=("ssp(local)", "ssp_(local)", "ssplocal"),
    builder=_build,
))
