"""The GeoTP coordinator: latency-aware geo-distributed transaction processing.

This is the paper's contribution assembled from its three techniques:

* **O1 — decentralized prepare & early abort** (§IV-A): the coordinator talks to
  geo-agents instead of raw data sources; statement batches carrying the
  last-statement annotation trigger the prepare phase at the agent, and the
  coordinator merely waits for the asynchronous votes before the commit round
  trip.  On execution failure the agents abort each other directly.
* **O2 — latency-aware scheduling** (§IV-B): per interaction round, dispatch of
  each participant's batch is postponed by ``max_s tau_s - tau_j`` so that fast
  links stop holding locks while waiting for slow links.
* **O3 — high-contention optimizations** (§IV-C): the hotspot footprint and the
  local-execution-latency forecaster refine the postponement with predicted
  data-source-side latencies, and the late transaction scheduler blocks or
  sheds transactions that are very likely to abort on hot records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.common import AbortReason, SubtxnResult, TxnOutcome
from repro import protocol
from repro.core.admission import LateTransactionScheduler
from repro.core.config import GeoTPConfig
from repro.core.forecasting import LocalExecutionForecaster
from repro.core.hotspot import HotspotFootprint
from repro.core.latency_monitor import NetworkLatencyMonitor
from repro.core.scheduler import GeoScheduler
from repro.middleware.context import TransactionContext, TransactionPhase
from repro.middleware.coordinator import TwoPhaseCommitCoordinator
from repro.middleware.middleware import MiddlewareConfig, ParticipantHandle
from repro.middleware.rewriter import SubtransactionPlan
from repro.middleware.router import Partitioner
from repro.plugins import BuildContext, SystemPlugin, register_system
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.network import Message, Network
from repro.sim.rng import SeededRNG

#: Vote states that allow the transaction to commit.
_COMMITTABLE_STATES = {protocol.STATE_PREPARED, protocol.STATE_IDLE}
#: Vote states that terminate the prepare wait one way or the other.
_TERMINAL_STATES = {protocol.STATE_PREPARED, protocol.STATE_IDLE,
                    protocol.STATE_FAILURE, protocol.STATE_ROLLBACK_ONLY,
                    protocol.STATE_ROLLBACKED}


class _VoteBox:
    """Collects asynchronous per-participant state reports for one transaction."""

    def __init__(self, env: Environment):
        self.env = env
        self._history: Dict[str, List[str]] = {}
        self._waiters: List[Tuple[str, Set[str], Event]] = []

    def deliver(self, participant: str, state: str) -> None:
        """Record a state report and wake any matching waiters."""
        self._history.setdefault(participant, []).append(state)
        remaining = []
        for waited_participant, states, event in self._waiters:
            if waited_participant == participant and state in states and not event.triggered:
                event.succeed(state)
            else:
                remaining.append((waited_participant, states, event))
        self._waiters = remaining

    def states(self, participant: str) -> List[str]:
        """All states reported so far by ``participant``."""
        return list(self._history.get(participant, []))

    def wait_for(self, participant: str, states: Set[str]) -> Event:
        """Event firing once ``participant`` has reported any state in ``states``."""
        for state in self._history.get(participant, []):
            if state in states:
                event = Event(self.env)
                event.succeed(state)
                return event
        event = Event(self.env)
        self._waiters.append((participant, set(states), event))
        return event


class GeoTPCoordinator(TwoPhaseCommitCoordinator):
    """GeoTP middleware coordinator (O1 + O2 + O3, individually switchable)."""

    system_name = "GeoTP"

    def __init__(self, env: Environment, network: Network, config: MiddlewareConfig,
                 participants: Dict[str, ParticipantHandle], partitioner: Partitioner,
                 geotp_config: Optional[GeoTPConfig] = None,
                 rng: Optional[SeededRNG] = None):
        super().__init__(env, network, config, participants, partitioner)
        self.geotp = geotp_config or GeoTPConfig()
        self.rng = rng or SeededRNG(0)
        self.latency_monitor = NetworkLatencyMonitor(env, alpha=self.geotp.ewma_alpha)
        self.footprint = HotspotFootprint(capacity=self.geotp.hotspot_capacity,
                                          alpha=self.geotp.hotspot_alpha)
        self.forecaster = LocalExecutionForecaster(self.footprint,
                                                   scale=self.geotp.forecast_scale,
                                                   cap_ms=self.geotp.forecast_cap_ms)
        self.scheduler = GeoScheduler(
            self.latency_monitor, self.forecaster,
            use_forecast=self.geotp.enable_high_contention_optimization)
        self.admission = LateTransactionScheduler(
            self.footprint, self.rng,
            max_retries=self.geotp.admission_max_retries,
            backoff_ms=self.geotp.admission_backoff_ms,
            threshold=self.geotp.admission_threshold)
        self._vote_boxes: Dict[str, _VoteBox] = {}
        # Prime latency estimates with the nominal topology RTTs so the first
        # transactions are scheduled sensibly before any measurement exists.
        for name, handle in self.participants.items():
            self.latency_monitor.prime(name, self.network.rtt(self.name, handle.endpoint))

    # ------------------------------------------------------------------ wiring
    def start_probing(self) -> None:
        """Start the active latency probe loop (optional, Figure 11b)."""
        endpoints = {name: handle.endpoint
                     for name, handle in self.participants.items()}
        self.latency_monitor.start_probing(self.net, endpoints,
                                           interval_ms=self.geotp.probe_interval_ms)

    def record_network_rtt(self, participant: str, rtt_ms: float) -> None:
        self.latency_monitor.record(participant, rtt_ms)

    def _vote_box(self, ctx: TransactionContext) -> _VoteBox:
        box = self._vote_boxes.get(ctx.txn_id)
        if box is None:
            box = _VoteBox(self.env)
            self._vote_boxes[ctx.txn_id] = box
        return box

    def _on_message(self, message: Message) -> None:
        if message.msg_type != protocol.MSG_AGENT_PREPARE_RESULT:
            return
        payload = message.payload or {}
        txn_id = payload.get("global_txn_id")
        participant = payload.get("datasource")
        state = payload.get("state")
        if txn_id is None or participant is None or state is None:
            return
        box = self._vote_boxes.get(txn_id)
        if box is not None:
            box.deliver(participant, state)

    # -------------------------------------------------------------------- hooks
    def admit(self, ctx: TransactionContext):
        """O3 late transaction scheduling: block/shed likely-aborting transactions."""
        records = ctx.spec.record_ids()
        if not self.geotp.enable_high_contention_optimization:
            self.footprint.on_access_start(records)
            return (True, None)
        decision = yield from self.admission.admit(self.env, records)
        if not decision.admitted:
            return (False, AbortReason.ADMISSION_BLOCKED)
        self.footprint.on_access_start(records)
        return (True, None)

    def schedule_round(self, ctx: TransactionContext,
                       plans: Dict[str, SubtransactionPlan],
                       is_final_round: bool) -> Dict[str, float]:
        """O2/O3: postpone dispatch on low-latency participants (Eq. 3 / Eq. 8)."""
        if not self.geotp.enable_latency_aware_scheduling or len(plans) < 2:
            return {name: 0.0 for name in plans}
        records_by_participant = {
            name: [op.record_id() for op in plan.operations]
            for name, plan in plans.items()}
        decision = self.scheduler.schedule(records_by_participant)
        return decision.delays

    def execute_payload(self, ctx: TransactionContext, plan: SubtransactionPlan,
                        is_final_round: bool) -> Dict:
        payload = super().execute_payload(ctx, plan, is_final_round)
        peers = [self.participants[name].endpoint for name in ctx.participants
                 if name != plan.datasource]
        payload.update({
            "coordinator": self.name,
            "peers": peers,
            # The final interaction round plays the role of the annotated last
            # statement (the workloads annotate it explicitly; the middleware
            # also knows it is final because the client submitted the spec).
            "is_last": is_final_round,
            "decentralized_prepare": self.geotp.enable_decentralized_prepare,
        })
        return payload

    def on_round_complete(self, ctx: TransactionContext,
                          results: List[SubtxnResult]) -> None:
        """Feed observed local execution latencies into the hotspot statistics."""
        for result in results:
            records = list(result.per_record_latency)
            if records:
                self.footprint.update_latency(records, result.local_execution_ms)

    def on_transaction_finished(self, ctx: TransactionContext, outcome: TxnOutcome,
                                reason: Optional[AbortReason]) -> None:
        records = ctx.spec.record_ids()
        self.footprint.on_access_end(records, committed=outcome is TxnOutcome.COMMITTED)
        self._vote_boxes.pop(ctx.txn_id, None)
        self.stats.metadata_bytes = (self.footprint.memory_bytes()
                                     + self.latency_monitor.memory_bytes())

    # -------------------------------------------------------------- subtxn send
    def _execute_round(self, ctx: TransactionContext, statements, is_final_round: bool):
        """Dispatch a round through the geo-agents (verb ``agent_execute``)."""
        if not self.geotp.enable_decentralized_prepare:
            return (yield from super()._execute_round(ctx, statements, is_final_round))

        plans = self.rewriter.plan_round(statements)
        for name in plans:
            ctx.branch_xid(name)
        delays = self.schedule_round(ctx, plans, is_final_round)

        if is_final_round:
            self._notify_unplanned_participants(ctx, plans)

        subtxn_processes = []
        for name, plan in plans.items():
            subtxn_processes.append(self.env.process(
                self._execute_subtransaction_via_agent(
                    ctx, plan, delays.get(name, 0.0), is_final_round),
                name=f"{ctx.txn_id}:exec:{name}"))
        condition = yield self.env.all_of(subtxn_processes)
        results: List[SubtxnResult] = [condition[p] for p in subtxn_processes]

        failures = [r for r in results if not r.success]
        for result in results:
            ctx.results[result.datasource] = result
            ctx.merge_record_latencies(result)
        if failures:
            return False, failures[0].abort_reason or AbortReason.FAILURE
        self.on_round_complete(ctx, results)
        return True, None

    def _execute_subtransaction_via_agent(self, ctx: TransactionContext,
                                          plan: SubtransactionPlan, delay_ms: float,
                                          is_final_round: bool):
        if delay_ms > 0:
            yield delay_ms
        handle = self.participants[plan.datasource]
        pool = self.pools.pool(plan.datasource)
        connection = pool.acquire()
        yield connection
        try:
            yield self.config.request_overhead_ms
            payload = self.execute_payload(ctx, plan, is_final_round)
            self._vote_box(ctx)  # ensure the box exists before votes can arrive
            result = yield self.request_participant(
                handle, protocol.MSG_AGENT_EXECUTE, payload)
        finally:
            pool.release(connection)
        return result

    def _notify_unplanned_participants(self, ctx: TransactionContext,
                                       plans: Dict[str, SubtransactionPlan]) -> None:
        """Tell participants with no statement in the final round to prepare now."""
        for name in ctx.participants:
            if name in plans:
                continue
            handle = self.participants[name]
            peers = [self.participants[other].endpoint for other in ctx.participants
                     if other != name]
            self._vote_box(ctx)
            self.send_participant(handle, protocol.MSG_AGENT_PREPARE, {
                "xid": ctx.branch_xid(name),
                "global_txn_id": ctx.txn_id,
                "coordinator": self.name,
                "peers": peers,
            })

    # ------------------------------------------------------------------- commit
    def _commit_distributed(self, ctx: TransactionContext):
        """O1: wait for the decentralized prepare votes, then one commit round trip."""
        if not self.geotp.enable_decentralized_prepare:
            return (yield from super()._commit_distributed(ctx))

        box = self._vote_box(ctx)
        waits = [box.wait_for(name, _TERMINAL_STATES) for name in ctx.participants]
        condition = yield self.env.all_of(waits)
        states = {name: condition[event] for name, event in zip(ctx.participants, waits)}
        ready = all(state in _COMMITTABLE_STATES for state in states.values())

        yield from self._flush_decision_log(ctx, commit=ready)
        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        if ready:
            yield from self._dispatch_decision(ctx, protocol.MSG_XA_COMMIT)
            return TxnOutcome.COMMITTED, None
        yield from self._await_rollbacks(ctx)
        return TxnOutcome.ABORTED, AbortReason.PREPARE_FAILED

    def _abort_all(self, ctx: TransactionContext):
        """Early abort (O1): the agents already aborted each other; await confirmation."""
        early_abort_active = (self.geotp.enable_decentralized_prepare
                              and self.geotp.enable_early_abort
                              and len(ctx.participants) > 1)
        if not early_abort_active:
            return (yield from super()._abort_all(ctx))
        ctx.enter_phase(TransactionPhase.COMMIT, self.env.now)
        yield from self._flush_decision_log(ctx, commit=False)
        yield from self._await_rollbacks(ctx)

    def _await_rollbacks(self, ctx: TransactionContext):
        """Wait for every participant to confirm its branch rolled back."""
        box = self._vote_box(ctx)
        waits = [box.wait_for(name, {protocol.STATE_ROLLBACKED})
                 for name in ctx.participants]
        yield self.env.all_of(waits)


# ------------------------------------------------------------------- plugin
def _build(ctx: BuildContext) -> GeoTPCoordinator:
    return GeoTPCoordinator(ctx.env, ctx.network, ctx.middleware_config,
                            ctx.participants, ctx.partitioner,
                            geotp_config=ctx.geotp_config,
                            rng=SeededRNG(ctx.seed))


register_system(SystemPlugin(
    name="geotp",
    description="GeoTP: decentralized prepare + latency-aware scheduling "
                "+ high-contention optimizations (the paper's system)",
    builder=_build,
    needs_agents=True,
    supports_active_probing=True,
    ablations={
        "o1": lambda: GeoTPConfig().ablation_o1(),
        "o1_o2": lambda: GeoTPConfig().ablation_o1_o2(),
        "o1_o3": lambda: GeoTPConfig().ablation_o1_o3(),
    },
))
