"""Declare a custom scenario and sweep it over a process pool.

The experiment layer is driven by a declarative registry: a scenario is a base
:class:`~repro.ExperimentConfig` plus named parameter axes, and the
:class:`~repro.bench.SweepRunner` expands it into independent experiment
points that can run serially or across worker processes with identical
results.  This example builds a small custom grid (system x terminals x skew)
without writing any runner loop, then prints a table — exactly the pattern the
``fig*`` reproductions use internally.

Run with::

    PYTHONPATH=src python examples/scenario_sweep.py
"""

from repro import ExperimentConfig, YCSBConfig
from repro.bench import SweepRunner, print_table
from repro.bench.scenarios import Axis, ScenarioSpec

scenario = ScenarioSpec(
    name="custom_grid",
    description="GeoTP vs SSP across load and contention",
    base=ExperimentConfig(
        duration_ms=4_000.0, warmup_ms=1_000.0,
        ycsb=YCSBConfig(records_per_node=10_000, preload_rows_per_node=1_000)),
    axes=(
        Axis("system", ("ssp", "geotp")),
        Axis("terminals", (8, 24)),
        Axis("skew", (0.3, 0.9), path="ycsb.skew"),
    ),
)

sweep = scenario.sweep()
print(f"expanding {scenario.name!r}: {sweep.size()} points, "
      f"axes {' x '.join(a.name for a in sweep.axes)}")

# max_workers > 1 fans the points out over a process pool; the results are
# identical either way because every point is independently seeded.
outcome = SweepRunner(max_workers=2).run(sweep)

rows = [(p.params["system"], p.params["terminals"], p.params["skew"],
         round(p.summary.throughput_tps, 1),
         round(p.summary.average_latency_ms, 1),
         round(p.summary.abort_rate * 100, 1))
        for p in outcome]
print_table(f"custom grid ({outcome.wall_clock_s:.1f}s wall clock, "
            f"{outcome.workers} workers)",
            ["system", "terminals", "skew", "tput (tps)", "avg lat (ms)",
             "abort (%)"], rows)

# GeoTP should dominate SSP at every grid point.
for terminals in (8, 24):
    for skew in (0.3, 0.9):
        geotp = outcome.get(system="geotp", terminals=terminals, skew=skew)
        ssp = outcome.get(system="ssp", terminals=terminals, skew=skew)
        marker = "OK " if geotp.throughput_tps > ssp.throughput_tps else "?! "
        print(f"{marker} terminals={terminals} skew={skew}: "
              f"geotp {geotp.throughput_tps:.1f} vs ssp {ssp.throughput_tps:.1f} tps")
