#!/usr/bin/env python3
"""Build the optional mypyc-compiled engine core (``repro.sim._ckernel``).

The pure-Python kernel in ``src/repro/sim/_kernel/`` is the source of truth.
This script stages verbatim copies of the kernel modules into
``src/repro/sim/_ckernel/`` (whose committed ``__init__.py`` refuses to import
anything that is not a compiled extension), compiles them with mypyc via an
in-place ``build_ext``, deletes the staged ``.py`` files again, and finally
verifies that ``REPRO_ENGINE=compiled`` imports in a fresh interpreter and
reports byte-identical smoke results to the pure engine.

The module list and compiler knobs come from the ``[tool.mypyc]`` table in
``pyproject.toml`` — one source of truth shared with docs and CI.

The build is strictly optional.  Without mypy/mypyc or a C toolchain the repo
runs on the pure kernel, selected automatically (``REPRO_ENGINE=auto`` is the
default).  Exit codes:

* 0 — compiled core built and verified (or ``--if-available`` and mypyc is
  missing: a notice is printed and the pure engine remains in charge),
* 1 — mypyc is unavailable and ``--if-available`` was not given, or the
  build/verification failed.

Usage::

    python tools/build_compiled.py                # build + verify
    python tools/build_compiled.py --if-available # no-op exit 0 without mypyc
    python tools/build_compiled.py --clean        # remove build artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
KERNEL = SRC / "repro" / "sim" / "_kernel"
CKERNEL = SRC / "repro" / "sim" / "_ckernel"


def load_mypyc_config() -> Dict[str, Any]:
    """The ``[tool.mypyc]`` table from pyproject.toml."""
    try:
        import tomllib
    except ModuleNotFoundError as exc:  # Python 3.10: tomllib is 3.11+
        raise SystemExit(
            "error: reading pyproject.toml needs tomllib (Python >= 3.11); "
            "run the compiled build on a newer interpreter") from exc
    with open(ROOT / "pyproject.toml", "rb") as handle:
        table = tomllib.load(handle).get("tool", {}).get("mypyc", {})
    if not table.get("modules"):
        raise SystemExit("error: [tool.mypyc] modules missing from "
                         "pyproject.toml")
    return table


def mypyc_importable() -> bool:
    try:
        import mypyc.build  # noqa: F401
    except ImportError:
        return False
    return True


def stage_sources(modules: List[str]) -> List[Path]:
    """Copy kernel modules verbatim into the _ckernel package."""
    staged = []
    for module in modules:
        source = KERNEL / f"{module}.py"
        if not source.is_file():
            raise SystemExit(f"error: kernel module missing: {source}")
        target = CKERNEL / f"{module}.py"
        shutil.copyfile(source, target)
        staged.append(target)
    return staged


def clean_artifacts(modules: List[str], *, verbose: bool = True) -> None:
    """Remove staged sources, generated C, built extensions and temp dirs."""
    removed = []
    for path in sorted(CKERNEL.glob("*")):
        if path.name == "__init__.py":
            continue
        if path.suffix in (".py", ".c", ".so", ".pyd") or "__mypyc" in path.name:
            path.unlink()
            removed.append(path)
    # The grouped mypyc runtime lib lands one level up from the modules.
    for parent in (SRC / "repro" / "sim", SRC / "repro", SRC):
        for path in sorted(parent.glob("*__mypyc*")):
            if path.is_file():
                path.unlink()
                removed.append(path)
    for temp in (SRC / "build", ROOT / "build"):
        if temp.is_dir():
            shutil.rmtree(temp)
            removed.append(temp)
    if verbose and removed:
        print(f"cleaned {len(removed)} artifact(s)")


def build(config: Dict[str, Any], verbose: bool = False) -> None:
    """Stage + mypycify + build_ext --inplace, from the src/ root."""
    from mypyc.build import mypycify
    from setuptools import setup

    modules = list(config["modules"])
    staged = stage_sources(modules)
    cwd = os.getcwd()
    argv = sys.argv
    try:
        # Build from src/ so mypy maps repro/sim/_ckernel/X.py to module
        # repro.sim._ckernel.X and --inplace drops the extensions back
        # into the package directory.
        os.chdir(SRC)
        sys.argv = ["build_compiled.py", "build_ext", "--inplace"]
        paths = [str(path.relative_to(SRC)) for path in staged]
        setup(
            name="repro-ckernel",
            ext_modules=mypycify(
                paths,
                opt_level=str(config.get("opt_level", "3")),
                debug_level=str(config.get("debug_level", "1")),
                verbose=verbose,
            ),
        )
    finally:
        os.chdir(cwd)
        sys.argv = argv
        # The staged .py files exist only for mypyc's benefit; the committed
        # _ckernel/__init__.py refuses interpreted fallbacks anyway.
        for path in staged:
            path.unlink(missing_ok=True)
        for temp in (SRC / "build",):
            if temp.is_dir():
                shutil.rmtree(temp)


def verify() -> None:
    """Import + smoke-compare the compiled engine in fresh interpreters."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))

    def info_for(engine: str) -> Dict[str, Any]:
        env["REPRO_ENGINE"] = engine
        proc = subprocess.run(
            [sys.executable, "-c",
             "import json, repro.sim; print(json.dumps(repro.sim.engine_info()))"],
            env=env, capture_output=True, text=True, check=False, cwd=str(ROOT))
        if proc.returncode != 0:
            raise SystemExit(f"error: REPRO_ENGINE={engine} failed to "
                             f"import:\n{proc.stderr}")
        return json.loads(proc.stdout)

    info = info_for("compiled")
    if info["active"] != "compiled":
        raise SystemExit(f"error: compiled engine did not activate: {info}")

    def smoke_for(engine: str) -> str:
        env["REPRO_ENGINE"] = engine
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench.goldens", "snapshot", "smoke"],
            env=env, capture_output=True, text=True, check=False, cwd=str(ROOT))
        if proc.returncode != 0:
            raise SystemExit(f"error: smoke snapshot failed under "
                             f"REPRO_ENGINE={engine}:\n{proc.stderr}")
        return json.dumps(json.loads(proc.stdout)["snapshot"], sort_keys=True)

    if smoke_for("pure") != smoke_for("compiled"):
        raise SystemExit("error: compiled engine diverged from the pure "
                         "engine on the smoke scenario — refusing to leave a "
                         "non-equivalent build in place (run --clean)")
    print("verified: compiled engine imports and matches the pure engine "
          "byte-for-byte on the smoke scenario")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--if-available", action="store_true",
                        help="exit 0 with a notice when mypyc is missing "
                             "instead of failing")
    parser.add_argument("--clean", action="store_true",
                        help="remove staged/compiled artifacts and exit")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the post-build import/equivalence check")
    parser.add_argument("--verbose", action="store_true",
                        help="verbose mypyc output")
    args = parser.parse_args(argv)

    config = load_mypyc_config()
    modules = list(config["modules"])
    if args.clean:
        clean_artifacts(modules)
        return 0
    if not mypyc_importable():
        message = ("mypyc is not installed; the compiled engine core was NOT "
                   "built. The pure-Python kernel remains the active engine "
                   "(REPRO_ENGINE=auto selects it automatically). Install "
                   "mypy to enable the build: pip install 'mypy>=1.8'")
        if args.if_available:
            print(f"notice: {message}")
            return 0
        print(f"error: {message}", file=sys.stderr)
        return 1
    clean_artifacts(modules, verbose=False)
    build(config, verbose=args.verbose)
    if not args.no_verify:
        verify()
    print(f"built compiled engine core: {len(modules)} module(s) in "
          f"{CKERNEL.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
