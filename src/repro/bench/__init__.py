"""Benchmark harness: experiment runner, per-figure experiments, reporting."""

from repro.bench.runner import ExperimentConfig, ExperimentResult, run_experiment
from repro.bench.report import format_table, print_series, print_table

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "format_table",
    "print_series",
    "print_table",
    "run_experiment",
]
