"""Figure 15 — single- versus multi-middleware deployment."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig15_multi_region


def test_fig15_multi_region(benchmark):
    result = benchmark.pedantic(
        lambda: fig15_multi_region(duration_ms=BENCH_DURATION_MS,
                                   terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    geotp = result["geotp"]
    ssp = result["ssp"]
    # GeoTP beats SSP in both deployments.  (The paper's multi-DM setup also
    # gains total throughput because its clients favour region-local data; the
    # YCSB generator here has no such affinity, so we only require that the
    # multi-DM deployment works and keeps GeoTP's advantage.)
    assert geotp["single_middleware_tps"] > ssp["single_middleware_tps"]
    assert geotp["multi_middleware_tps"] > ssp["multi_middleware_tps"]
    assert geotp["multi_middleware_tps"] > 0
