"""The experiment runner: one call builds a cluster, drives terminals, reports metrics.

This is the public entry point used by the examples and every benchmark:

>>> from repro import ExperimentConfig, run_experiment
>>> result = run_experiment(ExperimentConfig(system="geotp", terminals=16,
...                                          duration_ms=5_000))
>>> result.throughput_tps  # doctest: +SKIP
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Sequence

from repro.baselines.scalardb import ScalarDBConfig
from repro.sim.engine import active_engine
from repro.cluster.client import start_terminals
from repro.cluster.deployment import Cluster, build_cluster
from repro.cluster.fleet import FleetConfig, MiddlewareFleet, RetryPolicy
from repro.cluster.open_loop import OpenClientPool
from repro.cluster.topology import TopologyConfig
from repro.core.config import GeoTPConfig
from repro.metrics.collector import MetricsCollector, StreamingMetricsCollector
from repro.metrics.percentiles import LatencyDistribution
from repro.metrics.resources import ResourceUsage, process_peak_rss_bytes
from repro.metrics.timeline import ThroughputTimeline
from repro.middleware.middleware import MiddlewareConfig
from repro.plugins import get_workload_plugin
from repro.recovery.failures import FaultInjector, FaultPlan
from repro.recovery.invariants import check_invariants
from repro.workloads.arrivals import ArrivalConfig
from repro.workloads.base import Workload, WorkloadConfig
from repro.workloads.tpcc import TPCCConfig
from repro.workloads.ycsb import YCSBConfig

#: Simulated milliseconds between GC pauses while the event loop runs with the
#: cyclic collector suspended.  One collection per 30 simulated seconds reaps
#: incidental cycles created by model code before they amount to anything,
#: while short benchmark points (≤ 30 s) keep a completely pause-free hot
#: loop.  Slicing ``env.run`` at these boundaries does not reorder events, so
#: results are byte-identical to an unsliced run.
_GC_SLICE_MS = 30_000.0


@dataclass
class ExperimentConfig:
    """Everything needed to run one experiment point."""

    system: str = "geotp"
    workload: str = "ycsb"                      # any name in the workload registry
    topology: Optional[TopologyConfig] = None   # defaults to the paper topology
    terminals: int = 64
    duration_ms: float = 20_000.0
    warmup_ms: float = 2_000.0
    ycsb: YCSBConfig = field(default_factory=YCSBConfig)
    tpcc: TPCCConfig = field(default_factory=TPCCConfig)
    #: Config for registry workloads without a dedicated field above (contrib
    #: and third-party plugins); takes precedence over ``ycsb``/``tpcc`` when
    #: set.  ``None`` means "the plugin's default configuration".
    workload_config: Optional[WorkloadConfig] = None
    geotp: Optional[GeoTPConfig] = None
    scalardb: Optional[ScalarDBConfig] = None
    middleware: Optional[MiddlewareConfig] = None
    #: Number of coordinator middlewares.  With the default topology, values
    #: above 1 build ``TopologyConfig.multi_middleware(num_middlewares=K)``
    #: (a co-located fleet for K != 2, the Fig. 15 split for K = 2); with an
    #: explicit topology the counts must agree.  More than one middleware
    #: implies a client-side fleet (see ``fleet``).
    middleware_count: int = 1
    #: Fleet routing/failure-detection settings.  ``None`` with a single
    #: middleware means "no fleet" — terminals stay pinned exactly as before;
    #: with several middlewares a default :class:`FleetConfig` is used.
    fleet: Optional[FleetConfig] = None
    #: Client retry/backoff discipline.  ``None`` keeps the deprecated fixed
    #: ``ClientTerminal.RETRY_BACKOFF_MS`` pause (single-middleware legacy
    #: behaviour); fleet runs default to a :class:`RetryPolicy` so failover
    #: works out of the box.  Fields are sweepable axes (``retry.base_ms``).
    retry: Optional[RetryPolicy] = None
    #: Bucket width for the throughput time series (None disables the timeline).
    timeline_bucket_ms: Optional[float] = None
    #: Enable GeoTP's active latency probing (needed when link latencies change
    #: while the workload is not exercising them, Figure 11b).
    active_probing: bool = False
    #: Scheduled faults (crashes, outages, partitions, latency spikes) to
    #: inject during the run; ``None`` runs fault-free.  When set, the runner
    #: wires up a :class:`~repro.recovery.failures.FaultInjector` and the
    #: summary carries the fault/availability report in ``faults``.
    fault_plan: Optional[FaultPlan] = None
    #: Open-system traffic shape.  ``None`` (the default) keeps the
    #: closed-loop terminal model; setting it replaces the terminals with an
    #: :class:`~repro.cluster.open_loop.OpenClientPool` driven at
    #: ``arrival.rate_tps`` — the sweepable offered-load axis
    #: (``arrival.rate_tps`` in scenario specs).
    arrival: Optional[ArrivalConfig] = None
    #: Metrics representation.  ``None`` auto-selects: streaming (O(1) memory,
    #: reservoir percentiles) for open-system runs, retained (exact, O(n))
    #: otherwise.  ``True``/``False`` force one — closed-loop runs keep the
    #: retained collector by default so every golden pin stays byte-identical.
    streaming_metrics: Optional[bool] = None
    seed: int = 0

    @property
    def use_streaming_metrics(self) -> bool:
        """The resolved metrics mode (see ``streaming_metrics``)."""
        if self.streaming_metrics is None:
            return self.arrival is not None
        return self.streaming_metrics


@dataclass
class ExperimentSummary:
    """The slim, picklable aggregate of one experiment point.

    This is what crosses process boundaries when sweeps run on a worker pool
    (:class:`~repro.bench.parallel.SweepRunner`): plain scalars, sample lists
    and small value objects — never the live ``collector`` or ``cluster``,
    which hold simulation processes and stay local to the worker.
    """

    system: str
    workload: str
    terminals: int
    seed: int
    measured_duration_ms: float
    throughput_tps: float
    average_latency_ms: float
    p99_latency_ms: float
    abort_rate: float
    committed: int
    aborted: int
    breakdown: Dict[str, float]
    resources: ResourceUsage
    abort_reasons: Dict[str, int]
    #: Latency samples (ms) of committed transactions, split by distribution.
    latency_samples: Sequence[float]
    centralized_latency_samples: Sequence[float]
    distributed_latency_samples: Sequence[float]
    timeline: Optional[ThroughputTimeline] = None
    #: Total simulation queue entries dispatched (events + timers).
    events_processed: int = 0
    #: Fault/availability report of a fault-injection run (plan, injector log,
    #: recovery passes, per-second availability, time-to-recover); ``None``
    #: for fault-free runs.  See ``FaultInjector.summarize``.
    faults: Optional[Dict[str, Any]] = None
    #: Fleet report of a multi-middleware run (routing policy, per-middleware
    #: commit/abort/failover attribution, health transitions, time-to-divert,
    #: per-middleware availability timelines); ``None`` when no fleet ran.
    fleet: Optional[Dict[str, Any]] = None
    #: Simulation engine the run executed on (``pure`` or ``compiled``), as
    #: reported by :func:`repro.sim.engine.active_engine` in the process that
    #: ran the experiment — for sweeps on a worker pool that is the *worker*,
    #: which inherits ``REPRO_ENGINE`` through the environment.
    engine: str = ""
    #: ``"retained"`` or ``"streaming"`` — which collector produced the
    #: numbers.  Under streaming metrics the latency sample fields above hold
    #: fixed-size reservoir samples, not the full stream.
    metrics_mode: str = "retained"
    #: Offered-vs-served accounting of an open-system run (arrival process,
    #: offered/started/dropped/completed counts, peak concurrent sessions);
    #: ``None`` for closed-loop runs.  See ``OpenClientPool.report``.
    open_loop: Optional[Dict[str, Any]] = None
    #: Admission-control counters summed over middlewares that expose a
    #: ``LateTransactionScheduler`` (GeoTP, ScalarDB+); ``None`` otherwise.
    admission: Optional[Dict[str, int]] = None
    #: Peak RSS (bytes) of the process that ran this experiment, read after
    #: the run.  A whole-process high-water mark: points sharing a pooled
    #: sweep worker see monotonically increasing values, so treat it as an
    #: upper bound there (fresh subprocesses give isolated readings).
    peak_rss_bytes: int = 0
    #: Committed/aborted samples that landed inside the warmup window and
    #: were therefore excluded from the measured counters above.  Needed by
    #: the open-system accounting invariant (pool books count *all*
    #: completed sessions, measured counters only post-warmup ones).
    warmup_samples: int = 0
    #: Robustness-invariant report produced by
    #: :func:`repro.recovery.invariants.check_invariants` — ``{name:
    #: {"status": "passed"|"failed"|"skipped", "detail": str}}``.  Computed
    #: once per run in :meth:`ExperimentResult.summary`.
    invariants: Optional[Dict[str, Dict[str, str]]] = None

    # ------------------------------------------------------------ conveniences
    @property
    def latency(self) -> LatencyDistribution:
        """Latency distribution of all committed transactions."""
        return LatencyDistribution(self.latency_samples)

    def latency_for(self, distributed: Optional[bool] = None) -> LatencyDistribution:
        """Latency distribution filtered by centralized/distributed."""
        if distributed is None:
            return self.latency
        samples = (self.distributed_latency_samples if distributed
                   else self.centralized_latency_samples)
        return LatencyDistribution(samples)

    def summary_row(self):
        """A compact row used by the report tables."""
        return (self.system, round(self.throughput_tps, 1),
                round(self.average_latency_ms, 1), round(self.p99_latency_ms, 1),
                round(self.abort_rate * 100, 1))

    def to_dict(self, include_samples: bool = False,
                include_environment: bool = False) -> Dict:
        """A JSON-serialisable dict (the CLI output format).

        The default payload is fully determined by (config, seed, engine) —
        the serial-vs-parallel identity checks compare it directly.
        ``include_environment`` adds measurements of the *process* that ran
        the point (``peak_rss_bytes``), which legitimately differ between a
        serial run and a pool worker.
        """
        out = {
            "system": self.system,
            "workload": self.workload,
            "terminals": self.terminals,
            "seed": self.seed,
            "measured_duration_ms": self.measured_duration_ms,
            "throughput_tps": self.throughput_tps,
            "average_latency_ms": self.average_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "abort_rate": self.abort_rate,
            "committed": self.committed,
            "aborted": self.aborted,
            "breakdown": dict(self.breakdown),
            "abort_reasons": dict(self.abort_reasons),
            "events_processed": self.events_processed,
            "engine": self.engine,
            "metrics_mode": self.metrics_mode,
            "resources": {
                "work_units": self.resources.work_units,
                "wan_messages": self.resources.wan_messages,
                "metadata_bytes": self.resources.metadata_bytes,
                "work_per_commit": self.resources.work_per_commit,
                "wan_messages_per_commit": self.resources.wan_messages_per_commit,
            },
        }
        if self.timeline is not None:
            out["timeline"] = {
                "bucket_ms": self.timeline.bucket_ms,
                "series": [list(pair) for pair in self.timeline.series()],
            }
        if self.faults is not None:
            out["faults"] = self.faults
        if self.fleet is not None:
            out["fleet"] = self.fleet
        if self.open_loop is not None:
            out["open_loop"] = self.open_loop
        if self.admission is not None:
            out["admission"] = self.admission
        out["warmup_samples"] = self.warmup_samples
        if self.invariants is not None:
            out["invariants"] = self.invariants
        if include_environment:
            out["peak_rss_bytes"] = self.peak_rss_bytes
        if include_samples:
            out["latency_samples"] = list(self.latency_samples)
        return out


@dataclass
class ExperimentResult:
    """Aggregated outcome of one experiment point."""

    system: str
    workload: str
    terminals: int
    measured_duration_ms: float
    throughput_tps: float
    average_latency_ms: float
    p99_latency_ms: float
    abort_rate: float
    committed: int
    aborted: int
    latency: LatencyDistribution
    breakdown: Dict[str, float]
    resources: ResourceUsage
    collector: MetricsCollector
    timeline: Optional[ThroughputTimeline] = None
    cluster: Optional[Cluster] = None
    seed: int = 0
    #: Total simulation queue entries dispatched (events + timers).
    events_processed: int = 0
    #: Fault/availability report of a fault-injection run (see
    #: ``ExperimentSummary.faults``); ``None`` for fault-free runs.
    faults: Optional[Dict[str, Any]] = None
    #: Fleet report of a multi-middleware run (see ``ExperimentSummary.fleet``).
    fleet: Optional[Dict[str, Any]] = None
    #: Simulation engine the run executed on (``pure`` or ``compiled``).
    engine: str = ""
    #: See the same-named ``ExperimentSummary`` fields.
    metrics_mode: str = "retained"
    open_loop: Optional[Dict[str, Any]] = None
    admission: Optional[Dict[str, int]] = None
    peak_rss_bytes: int = 0
    warmup_samples: int = 0

    # ------------------------------------------------------------ conveniences
    def throughput_for(self, txn_type: str) -> float:
        """Committed transactions per second of one transaction type."""
        return self.collector.throughput_tps(self.measured_duration_ms, txn_type)

    def average_latency_for(self, txn_type: str) -> float:
        """Average latency (ms) of one transaction type."""
        return self.collector.average_latency_ms(txn_type=txn_type)

    def latency_for(self, txn_type: Optional[str] = None,
                    distributed: Optional[bool] = None) -> LatencyDistribution:
        """Latency distribution filtered by transaction type / distribution."""
        return self.collector.latency_distribution(txn_type=txn_type,
                                                   distributed=distributed)

    def summary_row(self):
        """A compact row used by the report tables."""
        return (self.system, round(self.throughput_tps, 1),
                round(self.average_latency_ms, 1), round(self.p99_latency_ms, 1),
                round(self.abort_rate * 100, 1))

    def summary(self) -> ExperimentSummary:
        """The picklable summary of this result (drops collector/cluster).

        Robustness invariants are evaluated here — once, on the complete
        summary — so every sweep point carries its own safety report without
        callers having to opt in.
        """
        summary = ExperimentSummary(
            system=self.system,
            workload=self.workload,
            terminals=self.terminals,
            seed=self.seed,
            measured_duration_ms=self.measured_duration_ms,
            throughput_tps=self.throughput_tps,
            average_latency_ms=self.average_latency_ms,
            p99_latency_ms=self.p99_latency_ms,
            abort_rate=self.abort_rate,
            committed=self.committed,
            aborted=self.aborted,
            breakdown=dict(self.breakdown),
            resources=self.resources,
            abort_reasons=self.collector.abort_reasons(),
            latency_samples=self.latency.samples,
            centralized_latency_samples=self.collector.latency_distribution(
                distributed=False).samples,
            distributed_latency_samples=self.collector.latency_distribution(
                distributed=True).samples,
            timeline=self.timeline,
            events_processed=self.events_processed,
            faults=self.faults,
            fleet=self.fleet,
            engine=self.engine,
            metrics_mode=self.metrics_mode,
            open_loop=self.open_loop,
            admission=self.admission,
            peak_rss_bytes=self.peak_rss_bytes,
            warmup_samples=self.warmup_samples,
        )
        summary.invariants = check_invariants(summary)
        return summary


def make_workload(config: ExperimentConfig, node_names) -> Workload:
    """Instantiate the workload generator selected by ``config``.

    The workload name resolves through the plugin registry (aliases like
    ``TPC-C`` included), so registering a :class:`~repro.plugins.WorkloadPlugin`
    is all a new workload needs — no edits here.  The workload config is
    copied before the experiment seed is stamped onto it, so a config shared
    across several ``ExperimentConfig``s never silently carries the last seed
    it ran with.
    """
    plugin = get_workload_plugin(config.workload)
    workload_config = config.workload_config
    if workload_config is not None and plugin.config_type is not None \
            and not isinstance(workload_config, plugin.config_type):
        # A stale workload_config from a previously selected workload would
        # otherwise reach the wrong factory and fail far from the cause.
        raise TypeError(
            f"workload {config.workload!r} expects a "
            f"{plugin.config_type.__name__} workload_config, got "
            f"{type(workload_config).__name__}")
    if workload_config is None and plugin.config_field is not None:
        workload_config = getattr(config, plugin.config_field, None)
    if workload_config is None:
        workload_config = plugin.config_factory()
    return plugin.create(node_names, replace(workload_config, seed=config.seed))


def run_experiment(config: ExperimentConfig,
                   keep_cluster: bool = False) -> ExperimentResult:
    """Run one experiment point and aggregate its metrics."""
    if config.warmup_ms >= config.duration_ms:
        raise ValueError("warmup_ms must be smaller than duration_ms")
    if config.middleware_count < 1:
        raise ValueError("middleware_count must be >= 1")
    topology = config.topology
    if topology is None:
        if config.middleware_count > 1:
            topology = TopologyConfig.multi_middleware(
                num_middlewares=config.middleware_count)
        else:
            topology = TopologyConfig.paper_default()
    elif (config.middleware_count > 1
          and len(topology.middlewares) != config.middleware_count):
        raise ValueError(
            f"middleware_count={config.middleware_count} disagrees with the "
            f"explicit topology ({len(topology.middlewares)} middlewares)")
    workload = make_workload(config, topology.node_names())
    partitioner = workload.make_partitioner()
    cluster = build_cluster(config.system, topology, partitioner,
                            middleware_config=config.middleware,
                            geotp_config=config.geotp,
                            scalardb_config=config.scalardb,
                            seed=config.seed)
    cluster.load_workload(workload)

    needs_fleet = config.fleet is not None or config.middleware_count > 1
    if config.use_streaming_metrics:
        collector: MetricsCollector = StreamingMetricsCollector(
            warmup_ms=config.warmup_ms, duration_ms=config.duration_ms,
            seed=config.seed, track_middlewares=needs_fleet)
    else:
        collector = MetricsCollector(warmup_ms=config.warmup_ms)
    timeline = (ThroughputTimeline(bucket_ms=config.timeline_bucket_ms)
                if config.timeline_bucket_ms else None)

    if config.active_probing:
        for middleware in cluster.middlewares:
            if hasattr(middleware, "start_probing"):
                middleware.start_probing()

    fault_injector = None
    if config.fault_plan is not None:
        fault_injector = FaultInjector(cluster, config.fault_plan)
        fault_injector.install()

    # The fleet is strictly opt-in: single-middleware runs without an explicit
    # FleetConfig take the pinned legacy path (no fleet, no probe process), so
    # the golden pins stay byte-identical.  Multi-middleware runs always get
    # one, and a fleet without a retry policy would be unable to fail over —
    # default it.
    fleet = None
    retry = config.retry
    if needs_fleet:
        fleet = MiddlewareFleet(cluster.env, cluster.middlewares,
                                config.fleet or FleetConfig())
        if retry is None:
            retry = RetryPolicy()

    open_pool = None
    if config.arrival is not None:
        open_pool = OpenClientPool(
            cluster.env, cluster.middlewares, workload, collector,
            arrival=config.arrival.stamped(config.seed),
            duration_ms=config.duration_ms, timeline=timeline,
            fleet=fleet, retry=retry, seed=config.seed)
    else:
        start_terminals(cluster.env, cluster.middlewares, workload, collector,
                        terminal_count=config.terminals,
                        duration_ms=config.duration_ms,
                        timeline=timeline, fleet=fleet, retry=retry,
                        seed=config.seed)
    # Suspending the cyclic GC removes its pauses from the hot loop.  Finished
    # processes are reclaimed by plain refcounting (the kernel breaks their one
    # reference cycle at completion), so garbage does not accumulate with run
    # length — but model code can still create incidental cycles, so long runs
    # are sliced and any residue reaped at slice boundaries.  Slicing is
    # invisible to the simulation: ``run(until=t)`` pauses the deterministic
    # dispatch order without reordering it, and collection touches no
    # simulation state, so goldens are byte-identical with or without it.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        next_pause = min(config.duration_ms, _GC_SLICE_MS)
        while True:
            cluster.env.run(until=next_pause)
            if next_pause >= config.duration_ms:
                break
            gc.collect()
            next_pause = min(config.duration_ms, next_pause + _GC_SLICE_MS)
    finally:
        if gc_was_enabled:
            gc.enable()

    fleet_report = None
    if fleet is not None:
        fleet_report = fleet.summary()
        # Attribution is derived per middleware, so it sums exactly to the
        # collector's committed/aborted totals — the invariant the
        # zero-lost/zero-duplicated checks assert.  The accessors dispatch to
        # the retained samples or the streaming accumulators, whichever this
        # run used.
        fleet_report["attribution"] = collector.attribution()
        fleet_report["availability_per_middleware"] = {
            name: report.to_dict()
            for name, report in collector.per_middleware_availability(
                config.duration_ms).items()}

    admission_report = None
    schedulers = [m.admission for m in cluster.middlewares
                  if getattr(m, "admission", None) is not None]
    if schedulers:
        admission_report = {
            "admitted": sum(s.admitted_count for s in schedulers),
            "blocked": sum(s.blocked_count for s in schedulers),
            "rejected": sum(s.rejected_count for s in schedulers),
        }

    measured = config.duration_ms - config.warmup_ms
    latency = collector.latency_distribution()
    breakdown = collector.phase_breakdown()

    resources = ResourceUsage(
        work_units=sum(m.stats.work_units for m in cluster.middlewares),
        wan_messages=sum(m.stats.wan_messages for m in cluster.middlewares),
        metadata_bytes=sum(m.stats.metadata_bytes for m in cluster.middlewares),
        committed=sum(m.stats.committed for m in cluster.middlewares),
    )

    return ExperimentResult(
        system=config.system,
        workload=config.workload,
        terminals=config.terminals,
        measured_duration_ms=measured,
        throughput_tps=collector.throughput_tps(measured),
        average_latency_ms=latency.mean,
        p99_latency_ms=latency.p99 if len(latency) else 0.0,
        abort_rate=collector.abort_rate(),
        committed=collector.committed_count(),
        aborted=collector.aborted_count(),
        latency=latency,
        breakdown=breakdown.average(),
        resources=resources,
        collector=collector,
        timeline=timeline,
        cluster=cluster if keep_cluster else None,
        seed=config.seed,
        events_processed=cluster.env.events_processed,
        faults=(fault_injector.summarize(collector, config.duration_ms)
                if fault_injector is not None else None),
        fleet=fleet_report,
        engine=active_engine(),
        metrics_mode="streaming" if config.use_streaming_metrics else "retained",
        open_loop=open_pool.report() if open_pool is not None else None,
        admission=admission_report,
        peak_rss_bytes=process_peak_rss_bytes(),
        warmup_samples=collector.warmup_samples,
    )
