"""Shared resources for simulation processes (facade).

The implementation lives in the engine kernel —
:mod:`repro.sim._kernel.resources` (pure Python, source of truth) or its
mypyc-compiled twin — and is selected once per process by
:mod:`repro.sim.engine` from the ``REPRO_ENGINE`` environment variable.

See the kernel module for the design notes on FIFO resources and
direct-consumer stores.
"""

from repro.sim.engine import resources as _impl

ResourceRequest = _impl.ResourceRequest
Resource = _impl.Resource
StoreGet = _impl.StoreGet
Store = _impl.Store

__all__ = ["Resource", "ResourceRequest", "Store", "StoreGet"]
