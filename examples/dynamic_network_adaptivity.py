"""Online adaptivity: GeoTP reacting to changing WAN latencies (Figure 11b).

Link latencies between the middleware and the data sources are re-drawn every
ten simulated seconds.  GeoTP's EWMA latency monitor (fed passively by commit
acknowledgements and actively by probe pings) keeps its scheduling decisions in
step with the network, while the XA baseline has no notion of latency at all.
The script prints the per-interval throughput time series for both systems.

Usage::

    python examples/dynamic_network_adaptivity.py
"""

from repro import ExperimentConfig, TopologyConfig, YCSBConfig, run_experiment
from repro.bench.report import print_table
from repro.sim import DynamicLatency, SeededRNG


def build_dynamic_topology(phase_ms: float, phases: int) -> TopologyConfig:
    """Four links whose RTTs are re-drawn uniformly from [10, 200] ms per phase."""
    rng = SeededRNG(2024)
    models = []
    for _node in range(4):
        schedule = [(index * phase_ms, rng.uniform(10.0, 200.0))
                    for index in range(phases)]
        models.append(DynamicLatency(schedule))
    return TopologyConfig.from_latency_models(models)


def main() -> None:
    phase_ms = 10_000.0
    phases = 4
    duration_ms = phase_ms * phases
    timelines = {}
    totals = {}
    for system in ("ssp", "geotp"):
        config = ExperimentConfig(
            system=system,
            ycsb=YCSBConfig(skew=0.9, distributed_ratio=0.5),
            topology=build_dynamic_topology(phase_ms, phases),
            terminals=32,
            duration_ms=duration_ms,
            warmup_ms=2_000,
            timeline_bucket_ms=phase_ms / 2,
            active_probing=(system == "geotp"),
        )
        result = run_experiment(config)
        timelines[system] = dict(result.timeline.series(until_ms=duration_ms))
        totals[system] = result.throughput_tps

    buckets = sorted(set(timelines["ssp"]) | set(timelines["geotp"]))
    rows = [(f"{bucket / 1000:.0f}s",
             round(timelines["ssp"].get(bucket, 0.0), 1),
             round(timelines["geotp"].get(bucket, 0.0), 1)) for bucket in buckets]
    print_table("Throughput over time while link latencies change every 10 s",
                ["interval start", "SSP (txn/s)", "GeoTP (txn/s)"], rows)
    print(f"\nOverall: SSP {totals['ssp']:.1f} txn/s vs GeoTP {totals['geotp']:.1f} txn/s")


if __name__ == "__main__":
    main()
