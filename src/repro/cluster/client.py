"""Closed-loop client terminals (the Benchbase driver substitute).

Each terminal repeatedly generates a transaction from the workload, submits it
to its middleware, waits for the outcome and immediately submits the next one —
the closed-loop, zero-think-time model the paper uses.  Results are recorded in
a :class:`~repro.metrics.MetricsCollector` (and optionally a throughput
timeline for the time-series experiments).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common import AbortReason
from repro.metrics.collector import MetricsCollector
from repro.metrics.timeline import ThroughputTimeline
from repro.middleware.middleware import MiddlewareBase
from repro.sim.environment import Environment
from repro.sim.process import Process
from repro.workloads.base import Workload


class ClientTerminal:
    """One closed-loop client session."""

    #: Pause before reconnecting after the middleware refused a submission
    #: (``AbortReason.UNAVAILABLE``, i.e. it is crashed); without it a closed
    #: loop would spin at simulated-zero cost against a dead coordinator.
    RETRY_BACKOFF_MS = 50.0

    def __init__(self, env: Environment, terminal_id: int, middleware: MiddlewareBase,
                 workload: Workload, collector: MetricsCollector,
                 stop_at_ms: float, timeline: Optional[ThroughputTimeline] = None,
                 think_time_ms: float = 0.0):
        self.env = env
        self.terminal_id = terminal_id
        self.middleware = middleware
        self.workload = workload
        self.collector = collector
        self.timeline = timeline
        self.stop_at_ms = stop_at_ms
        self.think_time_ms = think_time_ms
        self.transactions_run = 0
        self.process: Process = env.process(self._run(),
                                            name=f"terminal-{terminal_id}",
                                            daemon=True)

    def _run(self):
        while self.env.now < self.stop_at_ms:
            spec = self.workload.next_transaction(self.terminal_id)
            result = yield self.middleware.submit(spec)
            self.transactions_run += 1
            self.collector.record(result, txn_type=spec.txn_type)
            if self.timeline is not None and result.committed:
                self.timeline.record(result.end_time)
            if result.abort_reason is AbortReason.UNAVAILABLE:
                yield self.env.timeout(self.RETRY_BACKOFF_MS)
            if self.think_time_ms > 0:
                yield self.env.timeout(self.think_time_ms)


def start_terminals(env: Environment, middlewares: Sequence[MiddlewareBase],
                    workload: Workload, collector: MetricsCollector,
                    terminal_count: int, duration_ms: float,
                    timeline: Optional[ThroughputTimeline] = None,
                    think_time_ms: float = 0.0) -> List[ClientTerminal]:
    """Start ``terminal_count`` terminals spread round-robin over the middlewares."""
    if terminal_count < 1:
        raise ValueError("terminal_count must be >= 1")
    if not middlewares:
        raise ValueError("at least one middleware is required")
    terminals = []
    for index in range(terminal_count):
        middleware = middlewares[index % len(middlewares)]
        terminals.append(ClientTerminal(
            env, index, middleware, workload, collector,
            stop_at_ms=duration_ms, timeline=timeline, think_time_ms=think_time_ms))
    return terminals
