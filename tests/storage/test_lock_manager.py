"""Unit tests for the strict-2PL lock manager."""

import pytest

from repro.sim import Environment
from repro.storage import DeadlockError, LockManager, LockMode, LockTimeoutError


def run(env, gen):
    return env.process(gen)


def test_exclusive_lock_granted_immediately_when_free():
    env = Environment()
    lm = LockManager(env)
    waits = []

    def proc():
        wait = yield lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        waits.append(wait)

    env.process(proc())
    env.run()
    assert waits == [0.0]
    assert lm.holders("k") == {"t1": LockMode.EXCLUSIVE}


def test_shared_locks_are_compatible():
    env = Environment()
    lm = LockManager(env)
    granted = []

    def reader(txn):
        yield lm.acquire(txn, "k", LockMode.SHARED)
        granted.append((env.now, txn))

    env.process(reader("t1"))
    env.process(reader("t2"))
    env.run()
    assert granted == [(0, "t1"), (0, "t2")]
    assert set(lm.holders("k")) == {"t1", "t2"}


def test_exclusive_blocks_until_release():
    env = Environment()
    lm = LockManager(env)
    log = []

    def writer1():
        yield lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        yield env.timeout(50)
        lm.release_all("t1")

    def writer2():
        yield env.timeout(1)
        wait = yield lm.acquire("t2", "k", LockMode.EXCLUSIVE)
        log.append((env.now, wait))

    env.process(writer1())
    env.process(writer2())
    env.run()
    assert log == [(50, pytest.approx(49))]


def test_shared_blocked_by_exclusive():
    env = Environment()
    lm = LockManager(env)
    log = []

    def writer():
        yield lm.acquire("w", "k", LockMode.EXCLUSIVE)
        yield env.timeout(30)
        lm.release_all("w")

    def reader():
        yield env.timeout(1)
        yield lm.acquire("r", "k", LockMode.SHARED)
        log.append(env.now)

    env.process(writer())
    env.process(reader())
    env.run()
    assert log == [30]


def test_lock_timeout_fails_request_and_counts():
    env = Environment()
    lm = LockManager(env, lock_wait_timeout_ms=100)
    errors = []

    def holder():
        yield lm.acquire("h", "k", LockMode.EXCLUSIVE)
        yield env.timeout(10_000)
        lm.release_all("h")

    def waiter():
        yield env.timeout(1)
        try:
            yield lm.acquire("w", "k", LockMode.EXCLUSIVE)
        except LockTimeoutError as exc:
            errors.append((env.now, exc.txn_id, exc.waited_ms))

    env.process(holder())
    env.process(waiter())
    env.run(until=2000)
    # Lock-wait timers live on the hashed timer wheel (1 ms ticks): the
    # 101 ms deadline falls exactly on a tick, so the expiry is unchanged.
    assert errors == [(101, "w", pytest.approx(100))]
    assert lm.stats.timeouts == 1


def test_reentrant_lock_same_transaction():
    env = Environment()
    lm = LockManager(env)
    done = []

    def proc():
        yield lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        yield lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        yield lm.acquire("t1", "k", LockMode.SHARED)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0]
    # Exclusive is retained even after the weaker re-request.
    assert lm.holders("k") == {"t1": LockMode.EXCLUSIVE}


def test_upgrade_shared_to_exclusive_when_sole_holder():
    env = Environment()
    lm = LockManager(env)
    done = []

    def proc():
        yield lm.acquire("t1", "k", LockMode.SHARED)
        yield lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0]
    assert lm.holders("k")["t1"] is LockMode.EXCLUSIVE


def test_upgrade_blocked_when_other_readers_present():
    env = Environment()
    lm = LockManager(env, lock_wait_timeout_ms=50)
    outcome = []

    def other_reader():
        yield lm.acquire("r2", "k", LockMode.SHARED)
        yield env.timeout(500)
        lm.release_all("r2")

    def upgrader():
        yield lm.acquire("r1", "k", LockMode.SHARED)
        yield env.timeout(1)
        try:
            yield lm.acquire("r1", "k", LockMode.EXCLUSIVE)
            outcome.append("upgraded")
        except LockTimeoutError:
            outcome.append("timeout")

    env.process(other_reader())
    env.process(upgrader())
    env.run(until=1000)
    assert outcome == ["timeout"]


def test_fifo_ordering_of_waiters():
    env = Environment()
    lm = LockManager(env)
    order = []

    def holder():
        yield lm.acquire("h", "k", LockMode.EXCLUSIVE)
        yield env.timeout(10)
        lm.release_all("h")

    def waiter(txn, arrive):
        yield env.timeout(arrive)
        yield lm.acquire(txn, "k", LockMode.EXCLUSIVE)
        order.append(txn)
        yield env.timeout(5)
        lm.release_all(txn)

    env.process(holder())
    env.process(waiter("first", 1))
    env.process(waiter("second", 2))
    env.process(waiter("third", 3))
    env.run()
    assert order == ["first", "second", "third"]


def test_new_shared_request_queues_behind_waiting_exclusive():
    """A reader arriving after a queued writer must not starve the writer."""
    env = Environment()
    lm = LockManager(env)
    order = []

    def reader1():
        yield lm.acquire("r1", "k", LockMode.SHARED)
        yield env.timeout(20)
        lm.release_all("r1")

    def writer():
        yield env.timeout(1)
        yield lm.acquire("w", "k", LockMode.EXCLUSIVE)
        order.append(("w", env.now))
        yield env.timeout(5)
        lm.release_all("w")

    def reader2():
        yield env.timeout(2)
        yield lm.acquire("r2", "k", LockMode.SHARED)
        order.append(("r2", env.now))
        lm.release_all("r2")

    env.process(reader1())
    env.process(writer())
    env.process(reader2())
    env.run()
    assert order == [("w", 20), ("r2", 25)]


def test_release_all_clears_bookkeeping():
    env = Environment()
    lm = LockManager(env)

    def proc():
        yield lm.acquire("t1", "a", LockMode.EXCLUSIVE)
        yield lm.acquire("t1", "b", LockMode.SHARED)
        lm.release_all("t1")

    env.process(proc())
    env.run()
    assert lm.locks_held("t1") == set()
    assert lm.holders("a") == {}
    assert lm.holders("b") == {}


def test_wait_for_graph_reports_blocking_edges():
    env = Environment()
    lm = LockManager(env, lock_wait_timeout_ms=10_000)

    def holder():
        yield lm.acquire("h", "k", LockMode.EXCLUSIVE)
        yield env.timeout(500)
        lm.release_all("h")

    def waiter():
        yield env.timeout(1)
        yield lm.acquire("w", "k", LockMode.EXCLUSIVE)
        lm.release_all("w")

    env.process(holder())
    env.process(waiter())
    env.run(until=100)
    assert lm.wait_for_graph() == {"w": {"h"}}


def test_deadlock_detection_aborts_victim():
    env = Environment()
    lm = LockManager(env, lock_wait_timeout_ms=100_000, enable_deadlock_detection=True)
    outcome = []

    def txn_a():
        yield lm.acquire("A", "x", LockMode.EXCLUSIVE)
        yield env.timeout(10)
        try:
            yield lm.acquire("A", "y", LockMode.EXCLUSIVE)
            outcome.append("A got y")
        except DeadlockError:
            outcome.append("A deadlock")
            lm.release_all("A")

    def txn_b():
        yield lm.acquire("B", "y", LockMode.EXCLUSIVE)
        yield env.timeout(20)
        try:
            yield lm.acquire("B", "x", LockMode.EXCLUSIVE)
            outcome.append("B got x")
        except DeadlockError:
            outcome.append("B deadlock")
            lm.release_all("B")

    env.process(txn_a())
    env.process(txn_b())
    env.run(until=50_000)
    assert "B deadlock" in outcome or "A deadlock" in outcome
    assert lm.stats.deadlocks >= 1


def test_queue_length_and_waiting_transactions():
    env = Environment()
    lm = LockManager(env)

    def holder():
        yield lm.acquire("h", "k", LockMode.EXCLUSIVE)
        yield env.timeout(1000)
        lm.release_all("h")

    def waiter(txn):
        yield env.timeout(1)
        yield lm.acquire(txn, "k", LockMode.EXCLUSIVE)

    env.process(holder())
    env.process(waiter("w1"))
    env.process(waiter("w2"))
    env.run(until=10)
    assert lm.queue_length("k") == 2
    assert lm.waiting_transactions("k") == ["w1", "w2"]


# ------------------------------------------------- timer/heap regression tests
def test_granted_after_wait_cancels_the_lock_wait_timer():
    env = Environment()
    lm = LockManager(env)

    def holder():
        yield lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        yield env.timeout(10)
        lm.release_all("t1")

    timers = []

    def waiter():
        yield env.timeout(1)
        request_event = lm.acquire("t2", "k", LockMode.EXCLUSIVE)
        timers.append(lm._pending_by_txn["t2"][0].timer)
        yield request_event

    env.process(holder())
    env.process(waiter())
    env.run()
    assert timers[0] is not None and timers[0].cancelled
    assert lm._pending_by_txn == {}


def test_event_heap_does_not_grow_with_granted_after_wait_requests():
    env = Environment()
    lm = LockManager(env)

    def cycle(round_index):
        # A holds the lock briefly; B waits and is granted, then releases.
        yield lm.acquire(f"a{round_index}", "k", LockMode.EXCLUSIVE)
        grant = lm.acquire(f"b{round_index}", "k", LockMode.EXCLUSIVE)
        yield env.timeout(1)
        lm.release_all(f"a{round_index}")
        yield grant
        lm.release_all(f"b{round_index}")

    def driver():
        for i in range(300):
            yield from cycle(i)

    env.process(driver())
    env.run()
    # Every cycle arms one 5000 ms lock-wait timer that is granted after ~1 ms.
    # Before the cancel-on-grant fix the heap kept all 300 stale timers; with
    # lazy cancellation plus compaction it stays bounded.
    assert len(env._queue) < 100
    assert lm._pending_by_txn == {}


def test_withdrawn_pending_request_still_times_out_like_before():
    """release_all withdraws a pending request but leaves its timer armed:
    the wait event must still fail with LockTimeoutError when the timer fires
    (the pre-index implementation behaved this way and callers rely on being
    woken up)."""
    env = Environment()
    lm = LockManager(env, lock_wait_timeout_ms=50)
    failures = []

    def holder():
        yield lm.acquire("t1", "k1", LockMode.EXCLUSIVE)
        yield lm.acquire("t1", "k2", LockMode.EXCLUSIVE)
        yield env.timeout(10)
        # t1 aborts for unrelated reasons while t2 is still waiting on k1.
        lm.release_all("t2")   # withdraws t2's pending request on k1
        lm.release_all("t1")

    def blocked():
        yield env.timeout(1)
        try:
            yield lm.acquire("t2", "k1", LockMode.EXCLUSIVE)
        except LockTimeoutError as exc:
            failures.append((env.now, exc.txn_id))

    env.process(holder())
    env.process(blocked())
    env.run()
    # Deadline 51 ms falls exactly on a 1 ms wheel tick: fires at 51.
    assert failures == [(51.0, "t2")]
    assert lm.stats.timeouts == 1


def test_release_all_is_scoped_to_the_releasing_transaction():
    env = Environment()
    lm = LockManager(env)
    granted = []

    def holder():
        yield lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        yield env.timeout(5)
        lm.release_all("t1")

    def waiter(txn):
        yield env.timeout(1)
        yield lm.acquire(txn, "k", LockMode.SHARED)
        granted.append((env.now, txn))

    env.process(holder())
    env.process(waiter("t2"))
    env.process(waiter("t3"))
    env.run()
    assert granted == [(5.0, "t2"), (5.0, "t3")]
