"""The pure-Python simulation kernel: source of truth for both engines.

This package holds the hot kernel of the discrete-event engine — events,
processes, the environment dispatch loop, resources and the 2PL lock
manager — written in strictly-annotated, mypyc-clean Python:

* full type annotations and ``Final`` module constants,
* no dynamic attribute tricks (no method shadowing, no ``__getattr__``),
* slots-compatible class layouts (mypyc native classes are slotted anyway;
  the explicit ``__slots__`` keep the *pure* interpretation lean too),
* only relative imports between kernel modules, so the whole package can be
  copied verbatim to ``repro.sim._ckernel`` and compiled ahead of time with
  mypyc without rebinding any cross-module reference.

Nothing outside :mod:`repro.sim.engine` should import this package directly:
the public modules (``repro.sim.events``, ``repro.sim.environment``,
``repro.sim.process``, ``repro.sim.resources``, ``repro.storage.lock_manager``)
are facades that re-export from whichever kernel the ``REPRO_ENGINE``
selector resolved, so pure and compiled classes are never mixed in one
process.
"""

from repro.sim._kernel import environment, events, locks, process, resources

__all__ = ["environment", "events", "locks", "process", "resources"]
