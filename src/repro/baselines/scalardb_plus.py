"""ScalarDB+: ScalarDB extended with GeoTP's scheduling and heuristics (§VII-A1).

The paper builds this variant to show that the proposed techniques generalise
beyond ShardingSphere: the latency-aware scheduler postpones the per-data-source
read batches so their round trips finish together (shrinking the window in
which optimistic conflicts can occur), and the late transaction scheduler
blocks transactions that are very likely to fail validation on hot records.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.scalardb import ScalarDBConfig, ScalarDBCoordinator
from repro.common import AbortReason
from repro.core.admission import LateTransactionScheduler
from repro.core.config import GeoTPConfig
from repro.core.forecasting import LocalExecutionForecaster
from repro.core.hotspot import HotspotFootprint
from repro.core.latency_monitor import NetworkLatencyMonitor
from repro.core.scheduler import GeoScheduler
from repro.middleware.context import TransactionContext
from repro.middleware.middleware import MiddlewareConfig, ParticipantHandle
from repro.middleware.router import Partitioner
from repro.sim.environment import Environment
from repro.sim.network import Network
from repro.sim.rng import SeededRNG
from repro.plugins import BuildContext, SystemPlugin, register_system


class ScalarDBPlusCoordinator(ScalarDBCoordinator):
    """ScalarDB with latency-aware scheduling and admission control."""

    system_name = "ScalarDB+"

    def __init__(self, env: Environment, network: Network, config: MiddlewareConfig,
                 participants: Dict[str, ParticipantHandle], partitioner: Partitioner,
                 scalardb_config: Optional[ScalarDBConfig] = None,
                 geotp_config: Optional[GeoTPConfig] = None,
                 rng: Optional[SeededRNG] = None):
        super().__init__(env, network, config, participants, partitioner,
                         scalardb_config=scalardb_config)
        self.geotp = geotp_config or GeoTPConfig()
        self.rng = rng or SeededRNG(0)
        self.latency_monitor = NetworkLatencyMonitor(env, alpha=self.geotp.ewma_alpha)
        self.footprint = HotspotFootprint(capacity=self.geotp.hotspot_capacity,
                                          alpha=self.geotp.hotspot_alpha)
        self.forecaster = LocalExecutionForecaster(self.footprint,
                                                   scale=self.geotp.forecast_scale,
                                                   cap_ms=self.geotp.forecast_cap_ms)
        self.scheduler = GeoScheduler(
            self.latency_monitor, self.forecaster,
            use_forecast=self.geotp.enable_high_contention_optimization)
        self.admission = LateTransactionScheduler(
            self.footprint, self.rng,
            max_retries=self.geotp.admission_max_retries,
            backoff_ms=self.geotp.admission_backoff_ms,
            threshold=self.geotp.admission_threshold)
        for name, handle in self.participants.items():
            self.latency_monitor.prime(name, self.network.rtt(self.name, handle.endpoint))

    def record_network_rtt(self, participant: str, rtt_ms: float) -> None:
        self.latency_monitor.record(participant, rtt_ms)

    def schedule_execution_delays(self, ctx: TransactionContext,
                                  records_by_participant: Dict[str, List]) -> Dict[str, float]:
        if (not self.geotp.enable_latency_aware_scheduling
                or len(records_by_participant) < 2):
            return {name: 0.0 for name in records_by_participant}
        return self.scheduler.schedule(records_by_participant).delays

    def _execute_round_ops(self, ctx: TransactionContext, statements):
        """Latency-aware execution: per-participant batches, postponed per Eq. (3).

        ScalarDB+ replaces the one-operation-at-a-time storage access of plain
        ScalarDB with per-data-source batches whose dispatch is postponed so
        that all batches finish together — the same scheduling idea GeoTP uses,
        which both shortens the transaction and narrows the window in which
        optimistic validation conflicts accumulate.
        """
        by_participant: Dict[str, List] = {}
        for stmt in statements:
            participant = self.partitioner.locate(stmt.operation.table,
                                                  stmt.operation.key)
            by_participant.setdefault(participant, []).append(stmt.operation)
        records_by_participant = {
            name: [op.record_id() for op in ops]
            for name, ops in by_participant.items()}
        delays = self.schedule_execution_delays(ctx, records_by_participant)
        processes = [self.env.process(
            self._read_batch(name, ops, delays.get(name, 0.0)),
            name=f"{ctx.txn_id}:scalardb+:{name}")
            for name, ops in by_participant.items()]
        condition = yield self.env.all_of(processes)
        versions = {}
        for process in processes:
            versions.update(condition[process])
        return versions

    def admit(self, ctx: TransactionContext):
        records = ctx.spec.record_ids()
        if not self.geotp.enable_high_contention_optimization:
            self.footprint.on_access_start(records)
            return (True, None)
        decision = yield from self.admission.admit(self.env, records)
        if not decision.admitted:
            return (False, AbortReason.ADMISSION_BLOCKED)
        self.footprint.on_access_start(records)
        return (True, None)

    def on_transaction_settled(self, ctx: TransactionContext, committed: bool) -> None:
        records = ctx.spec.record_ids()
        self.footprint.on_access_end(records, committed=committed)
        # Approximate per-record latency with the transaction's prepare-phase
        # duration (the window in which optimistic conflicts materialise).
        prepare_ms = ctx.phase_durations.get("prepare", 0.0)
        if records and prepare_ms > 0:
            self.footprint.update_latency(records, prepare_ms)
        self.stats.metadata_bytes = (self.footprint.memory_bytes()
                                     + self.latency_monitor.memory_bytes())


# ------------------------------------------------------------------- plugin
def _build(ctx: BuildContext) -> ScalarDBPlusCoordinator:
    return ScalarDBPlusCoordinator(ctx.env, ctx.network, ctx.middleware_config,
                                   ctx.participants, ctx.partitioner,
                                   scalardb_config=ctx.scalardb_config,
                                   geotp_config=ctx.geotp_config,
                                   rng=SeededRNG(ctx.seed))


register_system(SystemPlugin(
    name="scalardb_plus",
    description="ScalarDB extended with GeoTP's scheduling and admission control",
    aliases=("scalardb+", "scalardbplus"),
    builder=_build,
))
