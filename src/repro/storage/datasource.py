"""A network-attached simulated data source (MySQL- or PostgreSQL-like node).

The data source is a simulation process listening on its network inbox.  Every
incoming request is handled in its own sub-process so that many subtransactions
can execute concurrently and block on record locks independently, exactly as
sessions do in a real database server.

Supported verbs (see :mod:`repro.protocol`):

* XA lifecycle: ``xa_start``, ``execute``, ``xa_end``, ``xa_prepare``,
  ``xa_commit``, ``xa_rollback``, ``commit_one_phase``;
* recovery support: ``list_prepared``, ``txn_state``, ``crash``, ``restart``;
* a plain key-value interface (``kv_get`` / ``kv_put`` / ``kv_put_if_version``)
  used by the ScalarDB-style baseline, which keeps concurrency control in the
  middleware instead of the data source.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from repro.common import AbortReason, Operation, OperationResult, OpType, SubtxnResult, Vote
from repro import protocol
from repro.sim.environment import Environment
from repro.sim.network import Message, Network, NetworkInterface
from repro.storage.dialects import Dialect, MySQLDialect
from repro.storage.engine import StorageEngine
from repro.storage.lock_manager import (
    DeadlockError,
    LockManager,
    LockMode,
    LockTimeoutError,
)
from repro.storage.transaction import LocalTransaction, TxnState
from repro.storage.wal import LogRecordType, WriteAheadLog


@dataclass
class DataSourceConfig:
    """Static configuration of one data source node."""

    name: str
    dialect: Dialect = field(default_factory=MySQLDialect)
    #: Lock-wait timeout; the paper configures 5 s on MySQL/PostgreSQL.
    lock_wait_timeout_ms: float = 5000.0
    #: Extra fixed cost charged per request for parsing / session handling.
    request_overhead_ms: float = 0.1
    enable_deadlock_detection: bool = False
    #: How many *finished* (committed/aborted) branches stay queryable for
    #: idempotent decision re-delivery and ``txn_state`` probes before being
    #: evicted, oldest first.  Unfinished and PREPARED branches are never
    #: evicted.  ``None`` retains everything (pre-eviction behaviour); the
    #: default keeps memory O(1) over unbounded open-system runs while still
    #: covering every idempotent-retry window by orders of magnitude.
    finished_txn_retention: Optional[int] = 512


class DataSourceStats:
    """Operational counters of one data source (used for resource accounting)."""

    __slots__ = ("requests_handled", "operations_executed", "commits",
                 "aborts", "prepares", "busy_ms")

    def __init__(self) -> None:
        self.requests_handled = 0
        self.operations_executed = 0
        self.commits = 0
        self.aborts = 0
        self.prepares = 0
        self.busy_ms = 0.0


class DataSource:
    """One simulated database node."""

    def __init__(self, env: Environment, network: Network, config: DataSourceConfig):
        self.env = env
        self.config = config
        self.name = config.name
        self.dialect = config.dialect
        self.engine = StorageEngine(name=config.name)
        self.lock_manager = LockManager(
            env,
            lock_wait_timeout_ms=config.lock_wait_timeout_ms,
            enable_deadlock_detection=config.enable_deadlock_detection,
        )
        self.wal = WriteAheadLog(flush_cost_ms=self.dialect.prepare_cost_ms)
        self.net: NetworkInterface = network.interface(config.name)
        self.stats = DataSourceStats()
        self.transactions: Dict[str, LocalTransaction] = {}
        self._finished_xids: Deque[str] = deque()
        self.crashed = False
        # Verb dispatch table, built once: ``_handle`` runs per message.
        self._handlers = {
            protocol.MSG_XA_START: self._on_xa_start,
            protocol.MSG_EXECUTE: self._on_execute,
            protocol.MSG_XA_END: self._on_xa_end,
            protocol.MSG_XA_PREPARE: self._on_xa_prepare,
            protocol.MSG_XA_COMMIT: self._on_xa_commit,
            protocol.MSG_XA_ROLLBACK: self._on_xa_rollback,
            protocol.MSG_COMMIT_ONE_PHASE: self._on_commit_one_phase,
            protocol.MSG_LIST_PREPARED: self._on_list_prepared,
            protocol.MSG_TXN_STATE: self._on_txn_state,
            protocol.MSG_KV_GET: self._on_kv_get,
            protocol.MSG_KV_PUT: self._on_kv_put,
            protocol.MSG_KV_PUT_IF_VERSION: self._on_kv_put_if_version,
            protocol.MSG_CRASH: self._on_crash,
            protocol.MSG_RESTART: self._on_restart,
            protocol.MSG_PING: self._on_ping,
        }
        # Direct-consumer inbox: every delivered message spawns its handler
        # generator straight from the network's delivery dispatch — no server
        # loop, no get-event, no extra resume per message.  The handler runs
        # inline until its first yield (run-to-first-yield processes).
        self.net.inbox.set_consumer(self._dispatch)

    # ------------------------------------------------------------------ loading
    def load_table(self, table_name: str, rows: Dict[Hashable, object]) -> None:
        """Bulk-load committed rows into a table (setup only, no locking)."""
        self.engine.bulk_load(table_name, rows)

    # ------------------------------------------------------------------- server
    def _dispatch(self, message: Message) -> None:
        # Dispatch straight to the per-verb handler generator: routing through
        # a wrapper generator would add a delegating frame to every resume of
        # every handler, which is the hottest path in the simulator.
        if self.crashed and message.msg_type != protocol.MSG_RESTART:
            # A crashed *process* refuses connections immediately (the OS
            # resets them), so callers fail fast and can abort/retry instead
            # of blocking forever.  Silent loss is the semantics of a network
            # outage, modelled separately by Network.disrupt_node/_link.
            self._refuse_crashed(message)
            return
        self.stats.requests_handled += 1
        handler = self._handlers.get(message.msg_type) or self._on_unknown
        self.env.process(handler(message), name=message.msg_type, daemon=True)

    def _on_unknown(self, message: Message):
        if message.reply_event is not None:
            self.net.reply(message, {"status": "error",
                                     "error": f"unknown verb {message.msg_type}"})
        return
        yield  # pragma: no cover - makes this a generator like real handlers

    def _refuse_crashed(self, message: Message) -> None:
        """Answer a request aimed at the crashed node with a refusal.

        The reply shape matches what the verb's caller expects (a failed
        :class:`~repro.common.SubtxnResult` for execute, a NO vote for
        prepare, an error status otherwise) so coordinators abort the affected
        transaction promptly instead of misparsing the refusal.
        """
        if message.reply_event is None:
            return
        if message.msg_type == protocol.MSG_EXECUTE:
            payload = message.payload or {}
            reply = SubtxnResult(
                xid=payload.get("xid", "?"), datasource=self.name,
                success=False, error="data source crashed",
                abort_reason=AbortReason.UNAVAILABLE)
        elif message.msg_type == protocol.MSG_XA_PREPARE:
            reply = {"vote": Vote.NO, "error": "data source crashed"}
        else:
            reply = {"status": "error", "error": "data source crashed"}
        self.net.reply(message, reply)

    def _handle(self, message: Message):
        """Handle one message (kept for direct use by tests/tools)."""
        self.stats.requests_handled += 1
        handler = self._handlers.get(message.msg_type)
        if handler is None:
            yield from self._on_unknown(message)
            return
        yield from handler(message)

    def _reply(self, message: Message, value) -> None:
        if message.reply_event is not None:
            self.net.reply(message, value)

    # --------------------------------------------------------------- XA verbs
    def _on_xa_start(self, message: Message):
        payload = message.payload or {}
        xid = payload["xid"]
        global_txn_id = payload.get("global_txn_id", xid)
        yield self.config.request_overhead_ms
        self.transactions[xid] = LocalTransaction(
            xid=xid, global_txn_id=global_txn_id, started_at=self.env.now)
        self._reply(message, {"status": "ok"})

    def _on_execute(self, message: Message):
        payload = message.payload or {}
        xid = payload["xid"]
        operations: List[Operation] = payload.get("operations", [])
        txn = self.transactions.get(xid)
        if txn is None and payload.get("auto_start"):
            # XA START pipelined with the first statement batch, as real
            # middlewares do to avoid spending a WAN round trip on BEGIN.
            txn = LocalTransaction(xid=xid,
                                   global_txn_id=payload.get("global_txn_id", xid),
                                   started_at=self.env.now)
            self.transactions[xid] = txn
        if txn is None or txn.state is not TxnState.ACTIVE:
            state = txn.state.value if txn else "missing"
            self._reply(message, SubtxnResult(
                xid=xid, datasource=self.name, success=False,
                error=f"transaction {xid} not active ({state})",
                abort_reason=AbortReason.FAILURE))
            return

        env = self.env
        stats = self.stats
        dialect = self.dialect
        started = env.now
        yield self.config.request_overhead_ms
        results: List[OperationResult] = []
        per_record: Dict[Tuple[str, Hashable], float] = {}
        for operation in operations:
            if txn.state is not TxnState.ACTIVE:
                # The branch was rolled back (peer abort / coordinator rollback)
                # while this statement batch was still executing or waiting.
                self._reply(message, SubtxnResult(
                    xid=xid, datasource=self.name, success=False,
                    results=results, error="transaction aborted concurrently",
                    abort_reason=AbortReason.PEER_ABORT,
                    local_execution_ms=env.now - started,
                    per_record_latency=per_record))
                return
            op_started = env.now
            is_write = operation.op_type is not OpType.READ
            record_id = (operation.table, operation.key)
            mode = LockMode.EXCLUSIVE if is_write else LockMode.SHARED
            lock_event = self.lock_manager.acquire(xid, record_id, mode)
            try:
                yield lock_event
            except (LockTimeoutError, DeadlockError) as exc:
                reason = (AbortReason.DEADLOCK if isinstance(exc, DeadlockError)
                          else AbortReason.LOCK_TIMEOUT)
                if not txn.is_finished:
                    yield from self._abort_locally(txn)
                self._reply(message, SubtxnResult(
                    xid=xid, datasource=self.name, success=False,
                    results=results, error=str(exc), abort_reason=reason,
                    local_execution_ms=env.now - started,
                    per_record_latency=per_record))
                return
            if txn.first_lock_at is None:
                txn.first_lock_at = env.now
            txn.locked_keys.add(record_id)
            txn.accessed_records.append(record_id)

            cost = dialect.write_cost_ms if is_write else dialect.read_cost_ms
            yield cost
            if txn.state is not TxnState.ACTIVE:
                # Aborted while the operation cost was being paid (peer abort
                # or a coordinator-crash session kill): buffering the write
                # now would resurrect a write set the abort already
                # discarded, and success=True would misreport a dead branch.
                self._reply(message, SubtxnResult(
                    xid=xid, datasource=self.name, success=False,
                    results=results, error="transaction aborted concurrently",
                    abort_reason=AbortReason.PEER_ABORT,
                    local_execution_ms=env.now - started,
                    per_record_latency=per_record))
                return
            stats.operations_executed += 1
            stats.busy_ms += cost

            if is_write:
                self.engine.buffer_write(xid, operation.table, operation.key,
                                         operation.value)
                results.append(OperationResult(operation=operation, success=True))
            else:
                snapshot = self.engine.read(xid, operation.table, operation.key)
                value = snapshot.value if snapshot is not None else None
                results.append(OperationResult(operation=operation, success=True,
                                               value=value))
            per_record[record_id] = (
                per_record.get(record_id, 0.0) + (env.now - op_started))

        prepared = False
        if payload.get("prepare_after"):
            # Execute-and-prepare merging (used by the Chiller baseline): the
            # branch is prepared before the reply so the caller's execution
            # round trip doubles as its prepare round trip.
            yield self.dialect.prepare_cost_ms
            if txn.state is not TxnState.ACTIVE:
                # Aborted while the prepare cost was being paid — same race
                # as in _on_xa_prepare; report the failure instead of
                # preparing a dead branch.
                self._reply(message, SubtxnResult(
                    xid=xid, datasource=self.name, success=False,
                    results=results, error="transaction aborted concurrently",
                    abort_reason=AbortReason.PEER_ABORT,
                    local_execution_ms=env.now - started,
                    per_record_latency=per_record))
                return
            self.wal.append(LogRecordType.PREPARE, xid, self.env.now,
                            payload={"writes": len(self.engine.write_set(xid))})
            txn.mark_prepared()
            self.stats.prepares += 1
            prepared = True

        self._reply(message, SubtxnResult(
            xid=xid, datasource=self.name, success=True, results=results,
            local_execution_ms=self.env.now - started,
            per_record_latency=per_record, prepared=prepared))

    def _on_xa_end(self, message: Message):
        xid = (message.payload or {})["xid"]
        txn = self.transactions.get(xid)
        yield self.config.request_overhead_ms
        if txn is None or txn.state is not TxnState.ACTIVE:
            self._reply(message, {"status": "error", "error": "not active"})
            return
        txn.mark_end()
        self._reply(message, {"status": "ok"})

    def _on_xa_prepare(self, message: Message):
        xid = (message.payload or {})["xid"]
        txn = self.transactions.get(xid)
        if txn is None or txn.state not in (TxnState.ACTIVE, TxnState.IDLE):
            yield self.config.request_overhead_ms
            self._reply(message, {"vote": Vote.NO,
                                  "error": "transaction not preparable"})
            return
        # Persist transaction state + WAL (the paper's prepare cost, Fig. 6c).
        yield self.dialect.prepare_cost_ms
        if txn.state not in (TxnState.ACTIVE, TxnState.IDLE):
            # The branch was rolled back while the prepare cost was being
            # paid (peer abort, or its coordinator's sessions were killed by
            # a crash): vote NO instead of resurrecting a finished branch.
            self._reply(message, {"vote": Vote.NO,
                                  "error": "transaction not preparable"})
            return
        self.wal.append(LogRecordType.PREPARE, xid, self.env.now,
                        payload={"writes": len(self.engine.write_set(xid))})
        txn.mark_prepared()
        self.stats.prepares += 1
        self._reply(message, {"vote": Vote.YES})

    def _on_xa_commit(self, message: Message):
        xid = (message.payload or {})["xid"]
        txn = self.transactions.get(xid)
        if txn is None:
            yield self.config.request_overhead_ms
            self._reply(message, {"status": "error", "error": "unknown xid"})
            return
        if txn.state is TxnState.COMMITTED:
            # Idempotent: recovery may re-send the decision.
            yield self.config.request_overhead_ms
            self._reply(message, {"status": "ok", "already": True})
            return
        yield self.dialect.commit_cost_ms
        self.engine.commit_writes(xid)
        self.wal.append(LogRecordType.COMMIT, xid, self.env.now)
        txn.mark_committed(self.env.now)
        self.lock_manager.release_all(xid)
        self.stats.commits += 1
        self._retire(txn)
        self._reply(message, {"status": "ok"})

    def _on_xa_rollback(self, message: Message):
        xid = (message.payload or {})["xid"]
        txn = self.transactions.get(xid)
        yield self.config.request_overhead_ms
        if txn is None:
            self._reply(message, {"status": "ok", "already": True})
            return
        if txn.state is TxnState.ABORTED:
            self._reply(message, {"status": "ok", "already": True})
            return
        if txn.state is TxnState.COMMITTED:
            self._reply(message, {"status": "error", "error": "already committed"})
            return
        yield from self._abort_locally(txn)
        self._reply(message, {"status": "ok"})

    def _on_commit_one_phase(self, message: Message):
        """Single-source transactions commit without a separate prepare."""
        xid = (message.payload or {})["xid"]
        txn = self.transactions.get(xid)
        if txn is None or txn.is_finished:
            yield self.config.request_overhead_ms
            self._reply(message, {"status": "error", "error": "not committable"})
            return
        yield self.dialect.commit_cost_ms
        if txn.is_finished:
            # Aborted (e.g. coordinator-crash session kill) while the commit
            # cost was being paid: the branch's outcome already stuck.
            self._reply(message, {"status": "error", "error": "not committable"})
            return
        self.engine.commit_writes(xid)
        self.wal.append(LogRecordType.COMMIT, xid, self.env.now)
        txn.mark_committed_one_phase(self.env.now)
        self.lock_manager.release_all(xid)
        self.stats.commits += 1
        self._retire(txn)
        self._reply(message, {"status": "ok"})

    def _retire(self, txn: LocalTransaction) -> None:
        """Queue a finished branch for eviction once the retention cap is hit.

        Keeps :attr:`transactions` O(1) over unbounded runs while leaving the
        most recent ``finished_txn_retention`` finished branches queryable
        (idempotent decision re-delivery, ``txn_state``).  Only finished
        branches are ever evicted, so recovery's PREPARED scan is unaffected.
        """
        retention = self.config.finished_txn_retention
        if retention is None:
            return
        finished = self._finished_xids
        finished.append(txn.xid)
        while len(finished) > retention:
            xid = finished.popleft()
            old = self.transactions.get(xid)
            if old is not None and old.is_finished:
                del self.transactions[xid]

    def _abort_locally(self, txn: LocalTransaction):
        if txn.is_finished:
            return
        yield self.dialect.commit_cost_ms / 2
        if txn.is_finished:
            # Another handler (e.g. a peer-abort rollback racing with a lock
            # timeout) finished the branch while we were paying the abort cost.
            return
        self.engine.discard_writes(txn.xid)
        self.wal.append(LogRecordType.ABORT, txn.xid, self.env.now)
        txn.mark_aborted(self.env.now)
        self.lock_manager.release_all(txn.xid)
        self.stats.aborts += 1
        self._retire(txn)

    # --------------------------------------------------------------- recovery
    def kill_sessions(self, global_txn_prefix: str) -> int:
        """Abort unfinished, unprepared branches of one coordinator's sessions.

        When a middleware crashes, the database server sees its connections
        drop and rolls back their in-progress (not yet prepared) branches —
        prepared branches survive for recovery, exactly as in §V-A.  Branch
        ownership is recognised by the global-transaction-id prefix the
        middleware stamps on every branch.  Returns the number of branches
        rolled back.
        """
        killed = 0
        for txn in list(self.transactions.values()):
            if (txn.state in (TxnState.ACTIVE, TxnState.IDLE)
                    and txn.global_txn_id.startswith(global_txn_prefix)):
                self._rollback_lost_branch(txn)
                killed += 1
        return killed

    def _on_list_prepared(self, message: Message):
        yield self.config.request_overhead_ms
        prepared = [xid for xid, txn in self.transactions.items()
                    if txn.state is TxnState.PREPARED]
        self._reply(message, {"prepared": prepared})

    def _on_txn_state(self, message: Message):
        xid = (message.payload or {})["xid"]
        yield self.config.request_overhead_ms
        txn = self.transactions.get(xid)
        self._reply(message, {"state": txn.state.value if txn else "unknown"})

    def _rollback_lost_branch(self, txn: LocalTransaction) -> None:
        """Drop an unfinished, unprepared branch whose work is lost.

        Shared by the node-crash sweep and :meth:`kill_sessions`: no WAL
        record and no ``stats.aborts`` bump — crash-lost work is not a served
        abort, and the two fault kinds must account identically.
        """
        self.engine.discard_writes(txn.xid)
        txn.mark_aborted(self.env.now)
        self.lock_manager.release_all(txn.xid)
        self._retire(txn)

    def _on_crash(self, message: Message):
        """Crash the node: in-flight work is lost, non-prepared branches abort."""
        yield self.env.timeout(0)
        self.crashed = True
        for txn in list(self.transactions.values()):
            if txn.state in (TxnState.ACTIVE, TxnState.IDLE):
                self._rollback_lost_branch(txn)
        self._reply(message, {"status": "crashed"})

    def _on_restart(self, message: Message):
        """Restart after a crash: prepared branches survive, the rest are gone."""
        yield 1.0
        self.crashed = False
        self._reply(message, {"status": "restarted"})

    def _on_ping(self, message: Message):
        yield self.env.timeout(0)
        self._reply(message, {"status": "ok", "time": self.env.now})

    # ------------------------------------------------- key-value verbs (ScalarDB)
    def _on_kv_get(self, message: Message):
        payload = message.payload or {}
        yield self.config.request_overhead_ms + self.dialect.read_cost_ms
        record = self.engine.table(payload["table"]).get(payload["key"])
        if record is None:
            self._reply(message, {"found": False})
        else:
            self._reply(message, {"found": True, "value": record.value,
                                  "version": record.version})

    def _on_kv_put(self, message: Message):
        payload = message.payload or {}
        yield self.config.request_overhead_ms + self.dialect.write_cost_ms
        record = self.engine.table(payload["table"]).put(
            payload["key"], payload["value"], writer=payload.get("writer", "kv"))
        self._reply(message, {"status": "ok", "version": record.version})

    def _on_kv_put_if_version(self, message: Message):
        """Conditional write used by middleware-side concurrency control."""
        payload = message.payload or {}
        yield self.config.request_overhead_ms + self.dialect.write_cost_ms
        table = self.engine.table(payload["table"])
        record = table.get(payload["key"])
        current_version = record.version if record else 0
        if current_version != payload["expected_version"]:
            self._reply(message, {"status": "conflict", "version": current_version})
            return
        record = table.put(payload["key"], payload["value"],
                           writer=payload.get("writer", "kv"))
        self._reply(message, {"status": "ok", "version": record.version})
