"""Global e-commerce checkout: TPC-C style order processing across regions.

The paper's introduction motivates GeoTP with a global store whose user
accounts live in one country and whose stock lives in another.  This example
runs the TPC-C NewOrder + Payment mix on the four-region topology, sweeps the
fraction of orders that need stock from a remote region, and shows how GeoTP
keeps checkout latency flat where the XA baseline degrades.

Usage::

    python examples/ecommerce_checkout.py
"""

from repro import ExperimentConfig, TPCCConfig, run_experiment
from repro.bench.report import print_table


def checkout_mix() -> dict:
    """Orders and payments only — the write-heavy, contended part of TPC-C."""
    return {"new_order": 0.5, "payment": 0.5}


def main() -> None:
    rows = []
    for remote_stock_ratio in (0.2, 0.6, 1.0):
        for system in ("ssp", "geotp"):
            config = ExperimentConfig(
                system=system,
                workload="tpcc",
                tpcc=TPCCConfig(
                    warehouses_per_node=4,
                    customers_per_district=30,
                    item_count=200,
                    mix=checkout_mix(),
                    distributed_ratio=remote_stock_ratio,
                ),
                terminals=32,
                duration_ms=15_000,
                warmup_ms=3_000,
            )
            result = run_experiment(config)
            rows.append((f"{int(remote_stock_ratio * 100)}%", system,
                         round(result.throughput_tps, 1),
                         round(result.average_latency_ms, 1),
                         round(result.average_latency_for("new_order"), 1),
                         round(result.average_latency_for("payment"), 1)))

    print_table(
        "Checkout performance vs share of orders needing remote stock",
        ["remote stock", "system", "orders+payments /s", "avg latency (ms)",
         "NewOrder latency (ms)", "Payment latency (ms)"], rows)


if __name__ == "__main__":
    main()
