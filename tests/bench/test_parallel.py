"""Tests for the parallel sweep executor: determinism, ordering, picklability."""

import os
import pickle
import subprocess
import sys

import pytest

from repro import ExperimentConfig, YCSBConfig, run_experiment
from repro.bench.experiments import fig5_overall
from repro.bench.parallel import (
    PointResult,
    SweepResult,
    SweepRunner,
    resolve_worker_count,
    run_sweep_point,
)
from repro.bench.scenarios import Axis, SweepSpec, get_scenario

TINY_YCSB = YCSBConfig(records_per_node=1_000, preload_rows_per_node=200,
                       skew=0.5, distributed_ratio=0.2)


def _tiny_sweep(**overrides):
    overrides.setdefault("duration_ms", 2_000.0)
    overrides.setdefault("terminals", 2)
    return get_scenario("smoke").sweep(**overrides)


def _fingerprint(result: SweepResult):
    return [(p.index, p.params, p.summary.committed, p.summary.aborted,
             p.summary.throughput_tps) for p in result]


def test_resolve_worker_count(monkeypatch):
    assert resolve_worker_count(4) == 4
    monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
    assert resolve_worker_count(None) == 1
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
    assert resolve_worker_count(None) == 3
    with pytest.raises(ValueError):
        resolve_worker_count(0)
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "four")
    with pytest.raises(ValueError, match="REPRO_BENCH_WORKERS"):
        resolve_worker_count(None)


def test_same_seed_runs_are_identical():
    config = ExperimentConfig(system="geotp", terminals=4, duration_ms=2_000.0,
                              warmup_ms=500.0, ycsb=TINY_YCSB, seed=3)
    first = run_experiment(config)
    second = run_experiment(config)  # reusing the config must be side-effect free
    assert first.committed == second.committed > 0
    assert first.aborted == second.aborted
    assert first.throughput_tps == second.throughput_tps
    assert first.latency.samples == second.latency.samples


def test_different_seeds_change_the_workload():
    base = dict(system="ssp", terminals=4, duration_ms=2_000.0, warmup_ms=500.0,
                ycsb=TINY_YCSB)
    first = run_experiment(ExperimentConfig(seed=1, **base))
    second = run_experiment(ExperimentConfig(seed=2, **base))
    assert first.latency.samples != second.latency.samples


def test_serial_runner_results_are_ordered_and_summarised():
    result = SweepRunner(max_workers=1).run(_tiny_sweep())
    assert [p.index for p in result] == [0, 1]
    assert [p.params["system"] for p in result] == ["ssp", "geotp"]
    assert all(p.summary.committed > 0 for p in result)
    assert all(p.wall_clock_s >= 0 for p in result)
    assert result.wall_clock_s > 0
    assert len(result) == 2 and result[0].params["system"] == "ssp"


def test_parallel_run_matches_serial_run_exactly():
    sweep = _tiny_sweep()
    serial = SweepRunner(max_workers=1).run(sweep)
    parallel = SweepRunner(max_workers=2).run(sweep)
    assert parallel.workers == 2
    assert _fingerprint(serial) == _fingerprint(parallel)


def test_sweep_runner_repeated_runs_are_deterministic():
    sweep = _tiny_sweep(seed=5)
    first = SweepRunner(max_workers=1).run(sweep)
    second = SweepRunner(max_workers=1).run(sweep)
    assert _fingerprint(first) == _fingerprint(second)


def test_fig5_series_identical_serial_and_parallel():
    kwargs = dict(terminal_counts=(4,), systems=("ssp", "geotp"),
                  duration_ms=2_500.0)
    serial = fig5_overall(workers=1, **kwargs)
    parallel = fig5_overall(workers=2, **kwargs)
    assert serial == parallel
    assert set(serial["series"]) == {"ssp", "geotp"}


def test_summaries_are_picklable_and_carry_the_full_aggregate():
    result = SweepRunner(max_workers=1).run(_tiny_sweep())
    summaries = pickle.loads(pickle.dumps(result.summaries()))
    for summary in summaries:
        assert summary.committed > 0
        assert summary.latency.mean > 0
        total = (len(summary.centralized_latency_samples)
                 + len(summary.distributed_latency_samples))
        assert total == len(summary.latency_samples)
        row = summary.summary_row()
        assert row[0] == summary.system
        doc = summary.to_dict()
        assert doc["committed"] == summary.committed
        assert "work_per_commit" in doc["resources"]


def test_sweep_result_select_and_get():
    result = SweepRunner(max_workers=1).run(_tiny_sweep())
    assert result.get(system="ssp").system == "ssp"
    assert [p.params["system"] for p in result.select(system="geotp")] == ["geotp"]
    with pytest.raises(KeyError):
        result.get(system="nope")


def test_fig10_tolerates_duplicated_axis_values():
    """Regression: duplicate sweep values used to break the row pairing."""
    from repro.bench.experiments import fig10_latency_sweep
    result = fig10_latency_sweep(means_ms=(20, 20), stds_ms=(0,),
                                 duration_ms=2_500.0, terminals=4)
    assert len(result["mean_sweep"]) == 2
    assert result["mean_sweep"][0] == result["mean_sweep"][1]


def test_results_do_not_depend_on_the_process_hash_seed():
    """Simulations must be reproducible across processes.

    Worker processes started with the ``spawn`` method get fresh string-hash
    seeds, so any hash-order-dependent iteration (the lock manager used to
    hand off locks in set order) would make parallel sweeps nondeterministic.
    """
    script = (
        "from repro import ExperimentConfig, YCSBConfig, run_experiment\n"
        "r = run_experiment(ExperimentConfig(system='geotp', terminals=6,\n"
        "    duration_ms=2500.0, warmup_ms=500.0, seed=3,\n"
        "    ycsb=YCSBConfig(records_per_node=1000, preload_rows_per_node=200,\n"
        "                    skew=1.2, distributed_ratio=0.5)))\n"
        "print(r.committed, r.aborted, repr(round(r.throughput_tps, 6)))\n"
    )
    outputs = set()
    for hash_seed in ("0", "1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=120,
                              cwd=os.path.dirname(os.path.dirname(
                                  os.path.dirname(os.path.abspath(__file__)))))
        assert proc.returncode == 0, proc.stderr
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, f"hash-seed-dependent results: {outputs}"


def test_run_sweep_point_is_importable_by_workers():
    # The worker entry point must be resolvable by qualified name for pickling.
    import repro.bench.parallel as parallel_module
    assert parallel_module.run_sweep_point is run_sweep_point
    sweep = SweepSpec(name="one", base=ExperimentConfig(
        system="ssp", terminals=2, duration_ms=1_500.0, warmup_ms=300.0,
        ycsb=TINY_YCSB), axes=(Axis("seed", (7,)),))
    point_result = run_sweep_point(sweep.points()[0])
    assert isinstance(point_result, PointResult)
    assert point_result.summary.seed == 7
