"""Unit and property-based tests for seeded RNG and Zipfian generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SeededRNG, ZipfianGenerator


def test_seeded_rng_is_reproducible():
    a = SeededRNG(42)
    b = SeededRNG(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_seeded_rng_different_seeds_differ():
    a = SeededRNG(1)
    b = SeededRNG(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_spawn_produces_independent_stable_streams():
    parent = SeededRNG(7)
    child1 = parent.spawn(1)
    child1_again = SeededRNG(7).spawn(1)
    assert [child1.random() for _ in range(5)] == [child1_again.random() for _ in range(5)]


def test_bernoulli_extremes():
    rng = SeededRNG(0)
    assert all(rng.bernoulli(1.0) for _ in range(100))
    assert not any(rng.bernoulli(0.0) for _ in range(100))


def test_randint_bounds_inclusive():
    rng = SeededRNG(3)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_exponential_zero_mean_is_zero():
    rng = SeededRNG(0)
    assert rng.exponential(0) == 0.0


def test_zipfian_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ZipfianGenerator(0, 0.5)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, -1)


def test_zipfian_theta_zero_is_roughly_uniform():
    gen = ZipfianGenerator(10, 0.0, rng=SeededRNG(11))
    counts = [0] * 10
    for _ in range(5000):
        counts[gen.next()] += 1
    assert min(counts) > 300  # every key hit a reasonable number of times


def test_zipfian_high_theta_concentrates_on_hot_keys():
    gen = ZipfianGenerator(10_000, 1.5, rng=SeededRNG(13))
    samples = [gen.next() for _ in range(5000)]
    hot_fraction = sum(1 for s in samples if s < 10) / len(samples)
    assert hot_fraction > 0.5


def test_zipfian_higher_theta_is_more_skewed():
    low = ZipfianGenerator(1000, 0.3, rng=SeededRNG(17))
    high = ZipfianGenerator(1000, 1.5, rng=SeededRNG(17))
    low_hot = sum(1 for _ in range(3000) if low.next() < 10)
    high_hot = sum(1 for _ in range(3000) if high.next() < 10)
    assert high_hot > low_hot


def test_zipfian_distinct_sampling_returns_unique_keys():
    gen = ZipfianGenerator(100, 0.9, rng=SeededRNG(19))
    keys = gen.sample_many(20, distinct=True)
    assert len(keys) == 20
    assert len(set(keys)) == 20


def test_zipfian_distinct_sampling_cannot_exceed_keyspace():
    gen = ZipfianGenerator(5, 0.9, rng=SeededRNG(19))
    with pytest.raises(ValueError):
        gen.sample_many(6, distinct=True)


def test_zipfian_two_item_key_space_does_not_divide_by_zero():
    """Regression: item_count=2 makes zeta(2) == zeta(n), so eta's
    denominator vanished; eta is never consulted for two items, so the
    generator must simply work."""
    generator = ZipfianGenerator(2, 2.0, rng=SeededRNG(0))
    samples = [generator.next() for _ in range(50)]
    assert set(samples) <= {0, 1}


@given(item_count=st.integers(min_value=1, max_value=100_000),
       theta=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_zipfian_samples_always_in_range(item_count, theta, seed):
    gen = ZipfianGenerator(item_count, theta, rng=SeededRNG(seed))
    for _ in range(30):
        value = gen.next()
        assert 0 <= value < item_count


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_uniform_within_bounds(seed):
    rng = SeededRNG(seed)
    for _ in range(20):
        value = rng.uniform(5.0, 6.0)
        assert 5.0 <= value <= 6.0
