"""Unit tests for the geo-scheduler, forecaster, admission control and latency monitor."""

import pytest

from repro.core import (
    GeoScheduler,
    HotspotFootprint,
    LateTransactionScheduler,
    LocalExecutionForecaster,
    NetworkLatencyMonitor,
)
from repro.sim import Environment, SeededRNG


def make_monitor(env=None, estimates=None):
    monitor = NetworkLatencyMonitor(env or Environment(), alpha=0.8)
    for name, rtt in (estimates or {}).items():
        monitor.prime(name, rtt)
    return monitor


# --------------------------------------------------------------------- monitor
def test_latency_monitor_prime_and_estimate():
    monitor = make_monitor(estimates={"ds1": 10, "ds2": 100})
    assert monitor.estimate("ds1") == 10
    assert monitor.estimate("ds2") == 100
    assert monitor.estimate("unknown") == 0.0


def test_latency_monitor_ewma_smoothing():
    monitor = NetworkLatencyMonitor(Environment(), alpha=0.8)
    monitor.record("ds", 100.0)
    assert monitor.estimate("ds") == 100.0
    monitor.record("ds", 200.0)
    # 0.8 * 100 + 0.2 * 200 = 120
    assert monitor.estimate("ds") == pytest.approx(120.0)
    assert monitor.sample_count("ds") == 2


def test_latency_monitor_tracks_changes_over_time():
    monitor = NetworkLatencyMonitor(Environment(), alpha=0.5)
    for _ in range(20):
        monitor.record("ds", 50.0)
    assert monitor.estimate("ds") == pytest.approx(50.0)
    for _ in range(20):
        monitor.record("ds", 150.0)
    assert monitor.estimate("ds") == pytest.approx(150.0, rel=0.01)


def test_latency_monitor_ignores_negative_samples_and_rejects_bad_alpha():
    monitor = NetworkLatencyMonitor(Environment(), alpha=0.5)
    monitor.record("ds", -5)
    assert monitor.sample_count("ds") == 0
    with pytest.raises(ValueError):
        NetworkLatencyMonitor(Environment(), alpha=2.0)


# ------------------------------------------------------------------- scheduler
def test_scheduler_eq3_postpones_fast_links():
    """Figure 4c: tau = {10, 100} ms -> the fast subtransaction waits 90 ms."""
    monitor = make_monitor(estimates={"ds1": 10, "ds2": 100})
    scheduler = GeoScheduler(monitor)
    decision = scheduler.schedule({"ds1": [("t", 1)], "ds2": [("t", 2)]})
    assert decision.delays["ds1"] == pytest.approx(90.0)
    assert decision.delays["ds2"] == pytest.approx(0.0)
    assert decision.max_total_latency == pytest.approx(100.0)


def test_scheduler_never_returns_negative_delays():
    monitor = make_monitor(estimates={"a": 50, "b": 50, "c": 5})
    scheduler = GeoScheduler(monitor)
    decision = scheduler.schedule({"a": [], "b": [], "c": []})
    assert all(delay >= 0 for delay in decision.delays.values())
    assert decision.delays["a"] == 0.0
    assert decision.delays["c"] == pytest.approx(45.0)


def test_scheduler_with_forecast_uses_eq8():
    """Eq. 8: delays account for predicted local execution latency."""
    monitor = make_monitor(estimates={"fast": 10, "slow": 100})
    footprint = HotspotFootprint(alpha=0.0)
    # The fast node hosts a hotspot with 50 ms of expected local latency.
    footprint.update_latency([("t", "hot")], 50.0)
    forecaster = LocalExecutionForecaster(footprint, scale=1.0)
    scheduler = GeoScheduler(monitor, forecaster, use_forecast=True)
    decision = scheduler.schedule({
        "fast": [("t", "hot")],
        "slow": [("t", "cold")],
    })
    # Critical path = max(10 + 50, 100 + 0) = 100; fast delay = 100 - 60 = 40.
    assert decision.forecasts["fast"] == pytest.approx(50.0)
    assert decision.delays["fast"] == pytest.approx(40.0)
    assert decision.delays["slow"] == pytest.approx(0.0)


def test_scheduler_empty_round_yields_empty_decision():
    scheduler = GeoScheduler(make_monitor())
    decision = scheduler.schedule({})
    assert decision.delays == {}
    assert decision.max_total_latency == 0.0


# ------------------------------------------------------------------ forecaster
def test_forecaster_applies_scale_factor():
    footprint = HotspotFootprint(alpha=0.0)
    footprint.update_latency([("t", 1)], 100.0)
    forecaster = LocalExecutionForecaster(footprint, scale=0.5)
    assert forecaster.forecast([("t", 1)]) == pytest.approx(50.0)
    with pytest.raises(ValueError):
        LocalExecutionForecaster(footprint, scale=-1)


def test_forecaster_observe_updates_footprint_and_counters():
    footprint = HotspotFootprint(alpha=0.0)
    footprint.on_access_start([("t", 1)])
    forecaster = LocalExecutionForecaster(footprint)
    forecaster.observe([("t", 1)], 30.0, committed=True)
    assert footprint.entry(("t", 1)).w_lat == pytest.approx(30.0)
    assert footprint.entry(("t", 1)).c_cnt == 1


# ------------------------------------------------------------------- admission
def test_admission_accepts_when_no_contention():
    env = Environment()
    footprint = HotspotFootprint()
    admission = LateTransactionScheduler(footprint, SeededRNG(1))
    decisions = []

    def proc():
        decision = yield from admission.admit(env, [("t", 1)])
        decisions.append(decision)

    env.process(proc())
    env.run()
    assert decisions[0].admitted
    assert decisions[0].retries_used == 0
    assert admission.admitted_count == 1


def test_admission_rejects_hopeless_transactions_after_max_retries():
    env = Environment()
    footprint = HotspotFootprint()
    entry = footprint.get_or_create(("t", "hot"))
    entry.t_cnt, entry.c_cnt, entry.a_cnt = 100, 0, 5  # success probability 0
    admission = LateTransactionScheduler(footprint, SeededRNG(1),
                                         max_retries=3, backoff_ms=10)
    decisions = []

    def proc():
        decision = yield from admission.admit(env, [("t", "hot")])
        decisions.append((decision, env.now))

    env.process(proc())
    env.run()
    decision, finished_at = decisions[0]
    assert not decision.admitted
    assert decision.retries_used == 3
    assert finished_at == pytest.approx(30.0)  # three backoffs of 10 ms
    assert admission.rejected_count == 1


def test_admission_evaluate_single_draw():
    footprint = HotspotFootprint()
    entry = footprint.get_or_create(("t", "hot"))
    entry.t_cnt, entry.c_cnt, entry.a_cnt = 10, 0, 4
    admission = LateTransactionScheduler(footprint, SeededRNG(2))
    decision = admission.evaluate([("t", "hot")])
    assert not decision.admitted
    assert decision.success_probability == 0.0


def test_admission_parameter_validation():
    footprint = HotspotFootprint()
    with pytest.raises(ValueError):
        LateTransactionScheduler(footprint, SeededRNG(0), max_retries=-1)
    with pytest.raises(ValueError):
        LateTransactionScheduler(footprint, SeededRNG(0), backoff_ms=-1)
