"""Figure 5 — overall throughput comparison on YCSB and TPC-C."""

from conftest import BENCH_DURATION_MS

from repro.bench.experiments import fig5_overall


def _final_throughput(series):
    return {system: points[-1][1] for system, points in series.items()}


def test_fig5a_overall_ycsb(benchmark):
    result = benchmark.pedantic(
        lambda: fig5_overall(workload="ycsb", terminal_counts=(16, 64),
                             duration_ms=BENCH_DURATION_MS, report=True),
        rounds=1, iterations=1)
    tput = _final_throughput(result["series"])
    # GeoTP dominates SSP and ScalarDB; ScalarDB+ clearly improves on ScalarDB.
    assert tput["geotp"] > tput["ssp"]
    assert tput["geotp"] > tput["scalardb"]
    assert tput["scalardb_plus"] > tput["scalardb"]


def test_fig5b_overall_tpcc(benchmark):
    result = benchmark.pedantic(
        lambda: fig5_overall(workload="tpcc", terminal_counts=(16, 64),
                             systems=("ssp", "scalardb", "scalardb_plus", "geotp"),
                             duration_ms=BENCH_DURATION_MS, report=True),
        rounds=1, iterations=1)
    tput = _final_throughput(result["series"])
    assert tput["geotp"] > tput["ssp"]
    assert tput["scalardb_plus"] > tput["scalardb"]
