"""Failure injection and recovery (§V-A of the paper)."""

from repro.recovery.failures import (
    FailureInjector,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    post_recovery_band,
)
from repro.recovery.recovery_manager import RecoveryManager, RecoveryReport

__all__ = [
    "FailureInjector",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "RecoveryManager",
    "RecoveryReport",
    "post_recovery_band",
]
