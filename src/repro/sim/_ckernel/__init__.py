"""The mypyc-compiled engine core (optional twin of :mod:`repro.sim._kernel`).

This package is *empty in source control* apart from this guard: the build
step (``python tools/build_compiled.py``) copies the kernel sources in,
compiles them with mypyc, and removes the staged ``.py`` files again so only
extension modules remain.  Importing the package therefore either yields the
compiled kernel or fails with :class:`ImportError` — it can never silently
hand back interpreted modules:

* if the extension modules were never built, the submodule import below
  raises ``ModuleNotFoundError``;
* if stale staged ``.py`` files are lying around (an aborted build), the
  origin check below rejects them, because "compiled engine" must mean
  compiled — a leftover interpreted copy would make every ``engine=compiled``
  benchmark number a lie.

:mod:`repro.sim.engine` catches the ImportError and falls back to the pure
kernel (under ``REPRO_ENGINE=auto``) or aborts (``REPRO_ENGINE=compiled``).
"""

from importlib import import_module
from types import ModuleType

_EXTENSION_SUFFIXES = (".so", ".pyd")


def _load_compiled(name: str) -> ModuleType:
    module = import_module(f"{__name__}.{name}")
    origin = getattr(module, "__file__", None) or ""
    if not origin.endswith(_EXTENSION_SUFFIXES):
        raise ImportError(
            f"{module.__name__} is not a compiled extension module "
            f"(found {origin!r}); refusing to pass off interpreted code as "
            f"the compiled engine. Re-run `python tools/build_compiled.py` "
            f"or delete the stale files under repro/sim/_ckernel/.")
    return module


# Dependency order: events <- process <- environment <- (resources, locks).
events = _load_compiled("events")
process = _load_compiled("process")
environment = _load_compiled("environment")
resources = _load_compiled("resources")
locks = _load_compiled("locks")

__all__ = ["environment", "events", "locks", "process", "resources"]
