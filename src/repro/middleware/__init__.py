"""Database-middleware layer (the ShardingSphere-like substrate).

The middleware accepts transactions from clients, parses and rewrites them into
per-data-source subtransactions, routes them according to the data partitioning
and coordinates the XA two-phase commit.  The base coordinator in
:mod:`repro.middleware.coordinator` reproduces the behaviour of the paper's SSP
baseline; GeoTP and the other baselines subclass it and override the
scheduling / prepare / commit hooks.
"""

from repro.middleware.statements import Statement, TransactionSpec
from repro.middleware.parser import ParseError, SqlParser
from repro.middleware.router import (
    ModuloPartitioner,
    Partitioner,
    TableAwarePartitioner,
    WarehousePartitioner,
)
from repro.middleware.rewriter import Rewriter, SubtransactionPlan
from repro.middleware.context import QueryContext, TransactionContext, TransactionPhase
from repro.middleware.connection_pool import ConnectionPool
from repro.middleware.middleware import MiddlewareBase, MiddlewareConfig, ParticipantHandle
from repro.middleware.coordinator import TwoPhaseCommitCoordinator

__all__ = [
    "ConnectionPool",
    "MiddlewareBase",
    "MiddlewareConfig",
    "ModuloPartitioner",
    "ParseError",
    "ParticipantHandle",
    "Partitioner",
    "QueryContext",
    "Rewriter",
    "SqlParser",
    "Statement",
    "SubtransactionPlan",
    "TableAwarePartitioner",
    "TransactionContext",
    "TransactionPhase",
    "TransactionSpec",
    "TwoPhaseCommitCoordinator",
    "WarehousePartitioner",
]
