"""Measurement utilities: latency/throughput collection, percentiles, breakdowns."""

from repro.metrics.availability import (
    AvailabilityReport,
    StreamingAvailability,
    build_availability,
    middleware_of,
    per_middleware_attribution,
    per_middleware_availability,
)
from repro.metrics.collector import (
    MetricsCollector,
    StreamingMetricsCollector,
    TransactionSample,
)
from repro.metrics.percentiles import (
    DEFAULT_RESERVOIR_SIZE,
    LatencyDistribution,
    StreamingLatencyDistribution,
    percentile,
)
from repro.metrics.timeline import ThroughputTimeline
from repro.metrics.breakdown import PhaseBreakdown
from repro.metrics.resources import ResourceUsage, process_peak_rss_bytes

__all__ = [
    "AvailabilityReport",
    "DEFAULT_RESERVOIR_SIZE",
    "LatencyDistribution",
    "MetricsCollector",
    "PhaseBreakdown",
    "ResourceUsage",
    "StreamingAvailability",
    "StreamingLatencyDistribution",
    "StreamingMetricsCollector",
    "ThroughputTimeline",
    "TransactionSample",
    "build_availability",
    "middleware_of",
    "per_middleware_attribution",
    "per_middleware_availability",
    "percentile",
    "process_peak_rss_bytes",
]
