"""Tests for the resumable sweep cache (``repro.bench.cache``).

Correctness here means four things, each pinned below: the canonical config
hash is stable across processes and ``PYTHONHASHSEED`` values yet sensitive to
every semantic config change; a cached point round-trips byte-identically; a
cache can only ever degrade to a recompute (corrupt entries, stale digests and
foreign engines all invalidate, never crash and never serve wrong data); and a
resumed sweep executes exactly the missing points.
"""

import json
import pickle
import subprocess
import sys

import pytest

from repro.bench.cache import (CACHE_SCHEMA, SweepCache, canonical_repr,
                               config_hash, engine_token, kernel_fingerprint)
from repro.bench.parallel import SweepRunner, run_sweep_point
from repro.bench.runner import ExperimentConfig
from repro.bench.scenarios import get_scenario
from repro.workloads.ycsb import YCSBConfig

from tests.conftest import REPO_ROOT, SRC_DIR


def smoke_sweep():
    return get_scenario("smoke").sweep()


def tiny_config(**overrides) -> ExperimentConfig:
    base = dict(system="geotp", terminals=2, duration_ms=300.0,
                warmup_ms=50.0, seed=11,
                ycsb=YCSBConfig(records_per_node=100,
                                preload_rows_per_node=50))
    base.update(overrides)
    return ExperimentConfig(**base)


# -------------------------------------------------------------- canonical hash
def test_config_hash_is_deterministic_within_a_process():
    assert config_hash(tiny_config()) == config_hash(tiny_config())


def test_config_hash_differs_on_any_semantic_change():
    reference = config_hash(tiny_config())
    assert config_hash(tiny_config(seed=12)) != reference
    assert config_hash(tiny_config(terminals=3)) != reference
    assert config_hash(tiny_config(duration_ms=301.0)) != reference
    assert config_hash(tiny_config(
        ycsb=YCSBConfig(records_per_node=100, preload_rows_per_node=50,
                        skew=1.2))) != reference


def test_config_hash_covers_every_registered_scenario():
    # Every registered point config must be canonicalisable — a scenario whose
    # config embeds an unknown type would make it silently uncacheable.
    for name in ("smoke", "load_sweep", "fleet_failover", "fault_ds_crash",
                 "fig11a_random_latency", "fig11b_dynamic_latency"):
        for point in get_scenario(name).sweep().points():
            assert len(config_hash(point.config)) == 64


def test_config_hash_is_stable_across_hash_seeds():
    """The key must not depend on PYTHONHASHSEED (dict/set iteration order)."""
    script = (
        "from repro.bench.cache import config_hash\n"
        "from repro.bench.scenarios import get_scenario\n"
        "print(config_hash(get_scenario('smoke').sweep().points()[0].config))\n"
    )
    digests = set()
    for hash_seed in ("0", "1", "42"):
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            cwd=REPO_ROOT, check=True,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": hash_seed})
        digests.add(proc.stdout.strip())
    assert len(digests) == 1, f"hash-seed-dependent digests: {digests}"


def test_canonical_repr_rejects_uncanonicalisable_objects():
    class Opaque:
        pass

    opaque = Opaque()
    # No attributes at all: nothing distinguishes two instances but identity,
    # which is exactly what must never leak into a cache key.
    with pytest.raises(TypeError, match="canonicalise"):
        canonical_repr(object())
    # With attributes it canonicalises by value, not by address.
    opaque.x = 1
    other = Opaque()
    other.x = 1
    assert canonical_repr(opaque) == canonical_repr(other)


def test_engine_token_names_engine_and_kernel_fingerprint():
    token = engine_token()
    name, _, fingerprint = token.partition(":")
    assert name in ("pure", "compiled")
    assert fingerprint == kernel_fingerprint()
    assert len(fingerprint) == 16


# ------------------------------------------------------------------ round trip
def test_cached_point_round_trips_byte_identically(tmp_path):
    sweep = smoke_sweep()
    point = sweep.points()[0]
    executed = run_sweep_point(point)
    cache = SweepCache(tmp_path)
    cache.store(sweep.name, point, executed)
    restored = SweepCache(tmp_path).lookup(sweep.name, sweep.points()[0])
    assert restored is not None
    assert restored.index == executed.index
    assert restored.params == executed.params
    assert restored.wall_clock_s == executed.wall_clock_s
    assert (json.dumps(restored.summary.to_dict(), sort_keys=True)
            == json.dumps(executed.summary.to_dict(), sort_keys=True))


def test_lookup_counts_hits_and_misses(tmp_path):
    sweep = smoke_sweep()
    points = sweep.points()
    cache = SweepCache(tmp_path)
    assert cache.lookup(sweep.name, points[0]) is None
    assert (cache.hits, cache.misses) == (0, 1)
    cache.store(sweep.name, points[0], run_sweep_point(points[0]))
    assert cache.lookup(sweep.name, points[0]) is not None
    assert (cache.hits, cache.misses) == (1, 1)


# --------------------------------------------------------------- invalidation
def test_corrupt_entry_degrades_to_recompute(tmp_path):
    sweep = smoke_sweep()
    point = sweep.points()[0]
    cache = SweepCache(tmp_path)
    cache.store(sweep.name, point, run_sweep_point(point))
    [entry] = list((tmp_path / sweep.name).glob("*.pkl"))
    entry.write_bytes(entry.read_bytes()[:40])  # truncate mid-pickle
    fresh = SweepCache(tmp_path)
    assert fresh.lookup(sweep.name, sweep.points()[0]) is None
    assert fresh.invalidations == 1
    assert not entry.exists(), "corrupt entries must be deleted"


def test_foreign_pickle_entry_degrades_to_recompute(tmp_path):
    sweep = smoke_sweep()
    point = sweep.points()[0]
    cache = SweepCache(tmp_path)
    path = cache._point_path(sweep.name, point, cache.entry_digest(point))
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"schema": CACHE_SCHEMA, "digest": "nope"}))
    assert cache.lookup(sweep.name, point) is None
    assert cache.invalidations == 1


def test_engine_change_invalidates_cached_entries(tmp_path):
    sweep = smoke_sweep()
    point = sweep.points()[0]
    old = SweepCache(tmp_path, engine="pure:0123456789abcdef")
    old.store(sweep.name, point, run_sweep_point(point))
    # Same sweep under the real engine token: the stale sibling (same point
    # index, different digest) is dropped, never served.
    current = SweepCache(tmp_path)
    assert current.engine != old.engine
    assert current.lookup(sweep.name, sweep.points()[0]) is None
    assert current.invalidations == 1
    assert list((tmp_path / sweep.name).glob("*.pkl")) == []


def test_config_change_invalidates_cached_entries(tmp_path):
    sweep = smoke_sweep()
    point = sweep.points()[0]
    cache = SweepCache(tmp_path)
    cache.store(sweep.name, point, run_sweep_point(point))
    changed = get_scenario("smoke").sweep(duration_ms=777.0)
    fresh = SweepCache(tmp_path)
    assert fresh.lookup(changed.name, changed.points()[0]) is None
    assert fresh.invalidations == 1


# --------------------------------------------------------------------- resume
def test_resumed_sweep_executes_exactly_the_missing_points(tmp_path):
    sweep = smoke_sweep()
    points = sweep.points()
    k = 1
    warm = SweepCache(tmp_path)
    for point in points[:k]:
        warm.store(sweep.name, point, run_sweep_point(point))
    cache = SweepCache(tmp_path)
    result = SweepRunner(cache=cache, resume=True).run(smoke_sweep())
    assert result.cache_hits == k
    assert result.cache_misses == len(points) - k
    assert result.cache_invalidations == 0
    assert len(result) == len(points)


def test_resumed_sweep_is_byte_identical_to_fresh_run(tmp_path):
    fresh = SweepRunner().run(smoke_sweep())
    warm = SweepCache(tmp_path)
    sweep = smoke_sweep()
    for point in sweep.points()[:1]:
        warm.store(sweep.name, point, run_sweep_point(point))
    resumed = SweepRunner(cache=SweepCache(tmp_path),
                          resume=True).run(smoke_sweep())
    payload = lambda result: json.dumps(
        [{"params": p.params, **p.summary.to_dict()} for p in result],
        sort_keys=True)
    assert payload(fresh) == payload(resumed)


def test_cache_without_resume_records_but_never_reads(tmp_path):
    cache = SweepCache(tmp_path)
    result = SweepRunner(cache=cache).run(smoke_sweep())
    # Every point was simulated (counted as misses) and persisted.
    assert result.cache_hits == 0
    assert result.cache_misses == len(result)
    assert len(list((tmp_path / "smoke").glob("*.pkl"))) == len(result)


def test_fully_cached_resume_simulates_nothing(tmp_path):
    SweepRunner(cache=SweepCache(tmp_path)).run(smoke_sweep())
    result = SweepRunner(cache=SweepCache(tmp_path),
                         resume=True).run(smoke_sweep())
    assert result.cache_hits == len(result)
    assert result.cache_misses == 0


# -------------------------------------------------------------- cross-engine
def test_resume_round_trip_is_identical_under_each_engine(engine,
                                                          goldens_runner):
    """The kill-and-resume workflow is byte-identical on pure AND compiled.

    ``goldens resume`` runs a mini load_sweep fresh, replays an interrupted
    run (first k points stored through the real worker path), resumes, and
    compares the deterministic payloads.
    """
    document = goldens_runner(engine, "resume", "--interrupt-after", "2")
    assert document["engine"] == engine
    assert document["identical"] is True
    assert document["hits"] == 2
    assert document["misses"] == document["points"] - 2
    assert document["fresh_sha256"] == document["resumed_sha256"]
