"""Base middleware node: transaction intake, bookkeeping and statistics.

:class:`MiddlewareBase` owns everything that is common to every coordinator in
the reproduction — SSP, SSP(local), ScalarDB, QURO, Chiller and GeoTP — namely
the network endpoint, the rewriter/router, connection pools, transaction-id
assignment, per-phase accounting and the resource counters that substitute for
the paper's CPU/memory measurements (Figure 6).  Subclasses implement
``_run_transaction`` (the coordination protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional

from repro.common import AbortReason, TransactionResult, TxnOutcome
from repro.middleware.connection_pool import ConnectionPoolSet
from repro.middleware.context import TransactionContext, TransactionPhase
from repro.middleware.rewriter import Rewriter
from repro.middleware.router import Partitioner
from repro.middleware.statements import TransactionSpec
from repro.sim.environment import Environment
from repro.sim.events import Interrupt
from repro.sim.network import Message, Network, NetworkInterface
from repro.sim.process import Process
from repro.storage.dialects import Dialect, MySQLDialect
from repro.storage.wal import WriteAheadLog


@dataclass(slots=True)
class ParticipantHandle:
    """How the middleware reaches one data source.

    ``endpoint`` is the network node the coordinator actually talks to: the
    data source itself for kernel-direct systems (SSP and friends), or the
    co-located geo-agent for GeoTP.
    """

    name: str
    endpoint: str
    dialect: Dialect = field(default_factory=MySQLDialect)
    #: Name of the raw data source node (== name); kept explicit for clarity
    #: when the endpoint is a geo-agent.
    datasource_node: Optional[str] = None

    def __post_init__(self) -> None:
        if self.datasource_node is None:
            self.datasource_node = self.name


@dataclass
class MiddlewareConfig:
    """Static configuration of a middleware node."""

    name: str = "dm"
    #: Cost of parsing/routing one transaction (the "Analysis" slice of Fig. 6c).
    analysis_cost_ms: float = 0.5
    #: Cost of flushing the commit/abort decision log (FlushLog in Alg. 1).
    log_flush_cost_ms: float = 1.0
    #: Per-message encode/decode overhead on the middleware.
    request_overhead_ms: float = 0.2
    connection_pool_capacity: int = 256


class MiddlewareStats:
    """Throughput/abort counters plus resource-accounting proxies.

    ``work_units`` counts coordination actions (messages sent plus statements
    routed); it stands in for CPU utilisation in the Figure 6a reproduction.
    ``metadata_bytes`` approximates the extra memory a middleware keeps
    (GeoTP's hotspot footprint reports into it).
    """

    __slots__ = ("submitted", "committed", "aborted", "work_units",
                 "metadata_bytes", "wan_messages", "aborts_by_reason")

    def __init__(self) -> None:
        self.submitted = 0
        self.committed = 0
        self.aborted = 0
        self.work_units = 0
        self.metadata_bytes = 0
        self.wan_messages = 0
        self.aborts_by_reason: Dict[str, int] = {}

    def record_outcome(self, result: TransactionResult) -> None:
        if result.committed:
            self.committed += 1
        else:
            self.aborted += 1
            if result.abort_reason is not None:
                key = result.abort_reason.value
                self.aborts_by_reason[key] = self.aborts_by_reason.get(key, 0) + 1


class MiddlewareBase:
    """Common machinery shared by every coordinator implementation."""

    #: Human-readable system name ("SSP", "GeoTP", ...), set by subclasses.
    system_name = "base"

    def __init__(self, env: Environment, network: Network, config: MiddlewareConfig,
                 participants: Dict[str, ParticipantHandle], partitioner: Partitioner):
        self.env = env
        self.network = network
        self.config = config
        self.name = config.name
        self.participants = dict(participants)
        self.partitioner = partitioner
        self.rewriter = Rewriter(partitioner)
        self.pools = ConnectionPoolSet(env, capacity=config.connection_pool_capacity)
        self.net: NetworkInterface = network.interface(config.name)
        self.wal = WriteAheadLog(flush_cost_ms=config.log_flush_cost_ms)
        self.stats = MiddlewareStats()
        self.active_contexts: Dict[str, TransactionContext] = {}
        #: Live coordinator processes by transaction id; the fault injector
        #: interrupts these when it crashes the middleware.
        self.active_processes: Dict[str, Process] = {}
        self._txn_counter = count(1)
        self.crashed = False
        # Direct-consumer inbox: asynchronous messages (decentralized prepare
        # votes, early-abort notices) are routed at delivery dispatch instead
        # of through a server loop's get-event round trip.
        self.net.inbox.set_consumer(self._dispatch_message)

    # ----------------------------------------------------------------- intake
    def submit(self, spec: TransactionSpec) -> Process:
        """Start processing a client transaction.

        Returns the coordinator process; its value is a
        :class:`~repro.common.TransactionResult`.  While the middleware is
        crashed the submission is refused after a connection-attempt delay
        (an aborted result with :attr:`~repro.common.AbortReason.UNAVAILABLE`)
        instead of being coordinated.
        """
        self.stats.submitted += 1
        txn_id = f"{self.name}-t{next(self._txn_counter)}"
        if self.crashed:
            return self.env.process(self._refuse(txn_id, spec),
                                    name=f"{self.name}:{txn_id}:refused")
        ctx = TransactionContext(txn_id=txn_id, spec=spec, submitted_at=self.env.now)
        self.active_contexts[txn_id] = ctx
        process = self.env.process(self._coordinate(ctx),
                                   name=f"{self.name}:{txn_id}")
        if process.is_alive:
            self.active_processes[txn_id] = process
        return process

    def _refuse(self, txn_id: str, spec: TransactionSpec):
        """Fail a submission against a crashed middleware (connection refused)."""
        submitted_at = self.env.now
        yield self.config.request_overhead_ms
        result = TransactionResult(
            txn_id=txn_id, outcome=TxnOutcome.ABORTED,
            start_time=submitted_at, end_time=self.env.now,
            is_distributed=False, abort_reason=AbortReason.UNAVAILABLE,
            rejected=True)
        self.stats.record_outcome(result)
        return result

    def _coordinate(self, ctx: TransactionContext):
        try:
            outcome, reason = yield from self._run_transaction(ctx)
        except Interrupt:
            # The middleware crashed under this transaction: the coordinator
            # is gone, in-doubt branches are left for the recovery protocol,
            # and the client sees the connection drop.
            outcome, reason = TxnOutcome.ABORTED, AbortReason.UNAVAILABLE
        finally:
            self.active_contexts.pop(ctx.txn_id, None)
            self.active_processes.pop(ctx.txn_id, None)
        self.on_transaction_finished(ctx, outcome, reason)
        ctx.enter_phase(TransactionPhase.DONE, self.env.now)
        result = TransactionResult(
            txn_id=ctx.txn_id,
            outcome=outcome,
            start_time=ctx.submitted_at,
            end_time=self.env.now,
            is_distributed=ctx.is_distributed,
            abort_reason=reason,
            phase_breakdown=dict(ctx.phase_durations),
            participant_count=max(len(ctx.participants), 1),
        )
        self.stats.record_outcome(result)
        return result

    def _run_transaction(self, ctx: TransactionContext):
        """Coordinate one transaction; yield events, return (outcome, abort_reason)."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for subclass symmetry

    def on_transaction_finished(self, ctx: TransactionContext, outcome: TxnOutcome,
                                reason: Optional[AbortReason]) -> None:
        """Hook invoked once per transaction just before the result is built.

        GeoTP uses it to settle its hotspot statistics; the base does nothing.
        """

    def record_network_rtt(self, participant: str, rtt_ms: float) -> None:
        """Hook fed with lightweight round-trip observations (commit acks).

        GeoTP's latency monitor overrides this; the base ignores the samples.
        """

    # ------------------------------------------------------------- networking
    def request_participant(self, handle: ParticipantHandle, msg_type: str, payload: Dict):
        """RPC to a participant endpoint, counting the coordination work."""
        self.stats.work_units += 1
        self.stats.wan_messages += 1
        return self.net.request(handle.endpoint, msg_type, payload)

    def timed_request_participant(self, handle: ParticipantHandle, msg_type: str,
                                  payload: Dict):
        """RPC whose round trip is reported to :meth:`record_network_rtt`.

        Only used for verbs with negligible server-side processing (prepare
        votes, commit acks) so the sample approximates the pure network RTT.
        """
        sent_at = self.env.now
        event = self.request_participant(handle, msg_type, payload)
        participant = handle.name

        def observe(_event) -> None:
            self.record_network_rtt(participant, self.env.now - sent_at)

        if event.callbacks is None:
            # The reply was already processed (an immediate local response):
            # the callback list is gone, so record the observation now instead
            # of silently dropping the sample.
            observe(event)
        else:
            event.callbacks.append(observe)
        return event

    def send_participant(self, handle: ParticipantHandle, msg_type: str, payload: Dict) -> None:
        """One-way message to a participant endpoint."""
        self.stats.work_units += 1
        self.stats.wan_messages += 1
        self.net.send(handle.endpoint, msg_type, payload)

    def participant_rtt(self, name: str) -> float:
        """Nominal network RTT from this middleware to participant ``name``."""
        handle = self.participants[name]
        return self.network.rtt(self.name, handle.endpoint)

    # ---------------------------------------------------------------- inbox
    def _dispatch_message(self, message: Message) -> None:
        """Route asynchronous messages (e.g. decentralized prepare votes)."""
        if not self.crashed:
            self._on_message(message)

    def _on_message(self, message: Message) -> None:
        """Handle an asynchronous message; the base coordinator expects none."""
        # Messages for transactions that already finished are ignored.
        return None
