"""Contrib plugins: systems and workloads shipped outside the core layers.

Every module in this package is a *self-registering plugin*: importing it
registers its :class:`~repro.plugins.SystemPlugin` /
:class:`~repro.plugins.WorkloadPlugin` (and, via
:func:`~repro.plugins.register_scenario_hook`, any scenarios) without touching
``repro.cluster.deployment`` or ``repro.bench.runner``.  The package imports
its submodules in sorted order, so dropping a new module here is all it takes
to add a system or workload; third-party distributions use the
``repro.plugins`` entry-point group instead (see ``pyproject.toml``).
"""

import importlib
import pkgutil

for _module in sorted(info.name for info in pkgutil.iter_modules(__path__)):
    importlib.import_module(f"{__name__}.{_module}")
