"""Routing of records to data sources (the sharding function).

The middleware must know, for every (table, key), which data source stores the
record.  Two partitioners cover the paper's workloads:

* :class:`ModuloPartitioner` — YCSB: integer keys spread across data nodes by
  ``key % node_count``; the workload exploits this to control the ratio of
  distributed transactions.
* :class:`WarehousePartitioner` — TPC-C: all nine tables are partitioned by
  warehouse id (the first element of the composite key); the ``item`` table is
  replicated everywhere and read locally.

:class:`TableAwarePartitioner` composes per-table rules when the two schemes
must coexist.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence


class Partitioner:
    """Maps (table, key) to the name of the data source storing the record."""

    def __init__(self, datasource_names: Sequence[str]):
        if not datasource_names:
            raise ValueError("at least one data source is required")
        self.datasource_names = list(datasource_names)
        #: Number of data sources (cached: ``locate`` runs on every operation).
        self.node_count = len(self.datasource_names)

    def locate(self, table: str, key: Hashable) -> str:
        """Name of the data source holding (table, key)."""
        raise NotImplementedError

    def node_index(self, table: str, key: Hashable) -> int:
        """Index (0-based) of the data source holding (table, key)."""
        return self.datasource_names.index(self.locate(table, key))


class ModuloPartitioner(Partitioner):
    """Integer keys striped across data sources by ``key % node_count``."""

    def locate(self, table: str, key: Hashable) -> str:
        if isinstance(key, bool) or not isinstance(key, int):
            key = abs(hash(key))
        return self.datasource_names[key % self.node_count]

    def key_for_node(self, node_index: int, sequence: int) -> int:
        """The ``sequence``-th key that lives on data source ``node_index``.

        Workload generators use this to build transactions that touch a chosen
        set of nodes (and thereby control the distributed-transaction ratio).
        """
        if not 0 <= node_index < self.node_count:
            raise ValueError(f"node index {node_index} out of range")
        return sequence * self.node_count + node_index


class WarehousePartitioner(Partitioner):
    """TPC-C partitioning: warehouse ``w`` lives on node ``(w - 1) // warehouses_per_node``.

    Keys are tuples whose first element is the warehouse id (1-based).  The
    read-only ``item`` table is replicated: every node holds a copy and lookups
    resolve to the local node passed as ``home_hint`` (or node 0).
    """

    REPLICATED_TABLES = ("item",)

    def __init__(self, datasource_names: Sequence[str], warehouses_per_node: int):
        super().__init__(datasource_names)
        if warehouses_per_node < 1:
            raise ValueError("warehouses_per_node must be >= 1")
        self.warehouses_per_node = warehouses_per_node

    @property
    def total_warehouses(self) -> int:
        """Total number of warehouses across the cluster."""
        return self.warehouses_per_node * self.node_count

    def node_for_warehouse(self, warehouse_id: int) -> str:
        """Data source holding ``warehouse_id`` (1-based)."""
        if warehouse_id < 1:
            raise ValueError("warehouse ids are 1-based")
        index = (warehouse_id - 1) // self.warehouses_per_node
        if index >= self.node_count:
            raise ValueError(f"warehouse {warehouse_id} exceeds the configured cluster")
        return self.datasource_names[index]

    def locate(self, table: str, key: Hashable, home_hint: Optional[str] = None) -> str:
        if table in self.REPLICATED_TABLES:
            return home_hint or self.datasource_names[0]
        if isinstance(key, tuple) and key:
            warehouse_id = key[0]
        elif isinstance(key, int):
            warehouse_id = key
        else:
            raise ValueError(f"TPC-C keys must start with a warehouse id, got {key!r}")
        return self.node_for_warehouse(int(warehouse_id))

    def warehouses_on_node(self, node_index: int) -> List[int]:
        """The warehouse ids stored on data source ``node_index``."""
        start = node_index * self.warehouses_per_node + 1
        return list(range(start, start + self.warehouses_per_node))


class TableAwarePartitioner(Partitioner):
    """Delegates to a per-table partitioner, with a default fallback."""

    def __init__(self, datasource_names: Sequence[str],
                 per_table: Dict[str, Partitioner], default: Partitioner):
        super().__init__(datasource_names)
        self.per_table = dict(per_table)
        self.default = default

    def locate(self, table: str, key: Hashable) -> str:
        return self.per_table.get(table, self.default).locate(table, key)
