"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed editable on environments whose setuptools/pip lack
PEP 660 support (``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
