"""Open-system client pool: arrivals at a configured *rate*, bounded sessions.

The closed-loop terminals (:mod:`repro.cluster.client`) can never offer more
load than the system absorbs — each terminal waits for its outcome before
submitting again — so throughput under them is always *achieved* throughput.
:class:`OpenClientPool` decouples offered from achieved load: an arrival
generator draws inter-arrival gaps from an
:class:`~repro.workloads.arrivals.ArrivalProcess` and hands each arrival to a
free client slot.  When all ``max_clients`` slots are busy the arrival is
**shed** (counted in :attr:`dropped`, never queued), which bounds client-side
memory no matter how far past saturation the rate is pushed — an unbounded
arrival queue would otherwise grow linearly once the knee is crossed and
drown the flat-RSS story the streaming metrics exist for.

Each slot owns a :class:`~repro.cluster.client.ClientTerminal` built with
``autostart=False``: the terminal is a pure submitter, so fleet routing,
failover on clean refusals, retry budgets and per-slot jitter RNGs behave
identically to the closed-loop path — one code path, two load models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.client import ClientTerminal
from repro.cluster.fleet import MiddlewareFleet, RetryPolicy
from repro.metrics.collector import MetricsCollector
from repro.metrics.timeline import ThroughputTimeline
from repro.middleware.middleware import MiddlewareBase
from repro.sim.environment import Environment
from repro.workloads.arrivals import ArrivalConfig, make_arrivals
from repro.workloads.base import Workload


class OpenClientPool:
    """Bounded pool of client sessions fed by a stochastic arrival stream."""

    def __init__(self, env: Environment, middlewares: Sequence[MiddlewareBase],
                 workload: Workload, collector: MetricsCollector,
                 arrival: ArrivalConfig, duration_ms: float,
                 timeline: Optional[ThroughputTimeline] = None,
                 fleet: Optional[MiddlewareFleet] = None,
                 retry: Optional[RetryPolicy] = None, seed: int = 0):
        if not middlewares:
            raise ValueError("at least one middleware is required")
        self.env = env
        self.workload = workload
        self.collector = collector
        self.timeline = timeline
        self.duration_ms = duration_ms
        self.arrival = arrival
        self.arrivals = make_arrivals(arrival)
        #: Arrivals generated (offered load), admitted to a slot, shed because
        #: every slot was busy, and finished (outcome recorded).  ``offered ==
        #: started + dropped`` always; ``started - completed`` sessions are
        #: still in flight.
        self.offered = 0
        self.started = 0
        self.dropped = 0
        self.completed = 0
        self.peak_active = 0
        self._active = 0
        # LIFO free list of slot indices; reversed so the first pop is slot 0.
        self._free: List[int] = list(range(arrival.max_clients - 1, -1, -1))
        # One submitter per slot, pinned round-robin exactly like
        # ``start_terminals`` — the slot index doubles as the terminal id the
        # workload and the fleet router see, so per-slot retry RNG streams
        # stay independent and deterministic.
        self._sessions = [
            ClientTerminal(env, slot, middlewares[slot % len(middlewares)],
                           workload, collector, stop_at_ms=duration_ms,
                           fleet=fleet, retry=retry, seed=seed,
                           autostart=False)
            for slot in range(arrival.max_clients)]
        self.process = env.process(self._generate(), name="open-arrivals",
                                   daemon=True)

    # ------------------------------------------------------------------ loop
    def _generate(self):
        while True:
            gap = self.arrivals.next_gap_ms(self.env.now)
            yield self.env.timeout(gap)
            if self.env.now >= self.duration_ms:
                return
            self.offered += 1
            if not self._free:
                self.dropped += 1
                continue
            slot = self._free.pop()
            self.started += 1
            self._active += 1
            if self._active > self.peak_active:
                self.peak_active = self._active
            # The workload draw happens only for admitted arrivals, so the
            # shed fraction does not perturb the transaction stream the
            # admitted sessions see.
            spec = self.workload.next_transaction(slot)
            self.env.process(self._session(self._sessions[slot], spec),
                             name=f"open-session-{slot}", daemon=True)

    def _session(self, terminal: ClientTerminal, spec):
        result = yield from terminal._submit(spec)
        terminal.transactions_run += 1
        self.completed += 1
        self.collector.record(result, txn_type=spec.txn_type)
        if self.timeline is not None and result.committed:
            self.timeline.record(result.end_time)
        self._active -= 1
        self._free.append(terminal.terminal_id)

    # ---------------------------------------------------------------- report
    def report(self) -> Dict:
        """Offered-vs-served accounting of the run (JSON-serialisable).

        ``drop_rate`` is the client-side admission signal the load sweeps
        plot next to goodput: past the knee it rises sharply because
        sessions stop turning over faster than arrivals come in.
        """
        return {
            "process": self.arrival.process,
            "rate_tps": self.arrival.rate_tps,
            "max_clients": self.arrival.max_clients,
            "offered": self.offered,
            "started": self.started,
            "dropped": self.dropped,
            "completed": self.completed,
            "in_flight_at_end": self._active,
            "peak_active": self.peak_active,
            "drop_rate": self.dropped / self.offered if self.offered else 0.0,
        }
