"""Simulated data-source layer.

Each data source models the parts of MySQL / PostgreSQL that matter to the
paper's experiments: key-value tables (:mod:`repro.storage.engine`), a strict
two-phase-locking lock manager with FIFO waiting and lock-wait timeouts
(:mod:`repro.storage.lock_manager`), a write-ahead log
(:mod:`repro.storage.wal`), the XA local transaction state machine
(:mod:`repro.storage.transaction`) and SQL-dialect profiles capturing the
differences between MySQL and PostgreSQL data sources
(:mod:`repro.storage.dialects`).  :mod:`repro.storage.datasource` ties these
together into a network-attached node process.
"""

from repro.storage.dialects import Dialect, MySQLDialect, PostgreSQLDialect
from repro.storage.datasource import DataSource, DataSourceConfig
from repro.storage.engine import StorageEngine, Table
from repro.storage.lock_manager import (
    DeadlockError,
    LockManager,
    LockMode,
    LockTimeoutError,
)
from repro.storage.record import Record
from repro.storage.transaction import LocalTransaction, TxnState
from repro.storage.wal import LogRecordType, WALRecord, WriteAheadLog

__all__ = [
    "DataSource",
    "DataSourceConfig",
    "DeadlockError",
    "Dialect",
    "LocalTransaction",
    "LockManager",
    "LockMode",
    "LockTimeoutError",
    "LogRecordType",
    "MySQLDialect",
    "PostgreSQLDialect",
    "Record",
    "StorageEngine",
    "Table",
    "TxnState",
    "WALRecord",
    "WriteAheadLog",
]
