"""The middleware's failure-recovery protocol (§V-A).

Recovery answers three questions: *which* transactions need recovery, *where*
the information needed to decide them lives, and *how* to finish them.

* After a **middleware crash**, the restarted (stateless) middleware collects
  the prepared-but-undecided branches from every data source and consults its
  own flushed decision log: branches whose transaction has a logged decision
  are driven to that decision; branches without one are rolled back, because
  the transaction can never have entered the commit phase (AC3/AC4).
* After a **data source crash**, branches that had not reached the prepared
  state are gone (the engine aborts them on restart); the middleware rolls back
  their sibling branches on the other data sources, and completes transactions
  that do have a logged decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro import protocol
from repro.middleware.middleware import MiddlewareBase
from repro.storage.wal import LogRecordType


@dataclass
class RecoveryReport:
    """What a recovery pass did."""

    committed: List[str] = field(default_factory=list)
    rolled_back: List[str] = field(default_factory=list)
    already_finished: List[str] = field(default_factory=list)

    @property
    def total_handled(self) -> int:
        return len(self.committed) + len(self.rolled_back) + len(self.already_finished)


class RecoveryManager:
    """Drives in-doubt transactions to a consistent outcome after a crash."""

    def __init__(self, middleware: MiddlewareBase):
        self.middleware = middleware

    # ------------------------------------------------------------------ helpers
    def _decision_for(self, branch_xid: str) -> LogRecordType:
        """The logged global decision governing ``branch_xid`` (ABORT if none).

        Branch xids are ``<global txn id>.<index>``; the decision log is keyed
        by the global id.
        """
        global_txn_id = branch_xid.rsplit(".", 1)[0]
        decision = self.middleware.wal.last_decision(global_txn_id)
        return decision if decision is not None else LogRecordType.ABORT

    # ----------------------------------------------------- middleware restart
    def recover_after_middleware_crash(self):
        """Generator: resolve every prepared-but-undecided branch in the cluster."""
        return (yield from self.resolve_in_doubt())

    def resolve_in_doubt(self, participant_names: Optional[Iterable[str]] = None,
                         skip_global_ids: Iterable[str] = (),
                         owned_prefix: Optional[str] = None):
        """Generator: drive prepared-but-undecided branches to their outcome.

        Collects the prepared branches of the named participants (all of them
        by default), consults the decision log and commits or rolls back each
        branch (AC3/AC4: no logged decision means the transaction never
        entered the commit phase, so rollback is safe).

        ``skip_global_ids`` exempts transactions that still have a *live*
        coordinator: after a data-source restart the other participants may
        hold branches that are legitimately mid-prepare, and only their own
        coordinator may decide them.  A restart-triggered recovery pass
        therefore passes the middleware's active transaction ids here.

        ``owned_prefix`` restricts the pass to branches this middleware owns
        (global ids are prefixed with the coordinator name), so in
        multi-middleware deployments one coordinator's recovery never decides
        another's in-doubt transactions — its decision log knows nothing
        about them.
        """
        report = RecoveryReport()
        skip = set(skip_global_ids)
        participants = self.middleware.participants
        if participant_names is None:
            selected = participants.items()
        else:
            selected = [(name, participants[name]) for name in participant_names]
        for name, handle in selected:
            reply = yield self.middleware.request_participant(
                handle, protocol.MSG_LIST_PREPARED, {})
            prepared = reply.get("prepared", []) if isinstance(reply, dict) else []
            for branch_xid in prepared:
                global_txn_id = branch_xid.rsplit(".", 1)[0]
                if global_txn_id in skip:
                    continue
                if owned_prefix is not None and not global_txn_id.startswith(owned_prefix):
                    continue
                decision = self._decision_for(branch_xid)
                if decision is LogRecordType.COMMIT:
                    yield self.middleware.request_participant(
                        handle, protocol.MSG_XA_COMMIT, {"xid": branch_xid})
                    report.committed.append(f"{name}:{branch_xid}")
                else:
                    yield self.middleware.request_participant(
                        handle, protocol.MSG_XA_ROLLBACK, {"xid": branch_xid})
                    report.rolled_back.append(f"{name}:{branch_xid}")
        return report

    # ---------------------------------------------------- data source restart
    def recover_after_datasource_crash(self, datasource_name: str,
                                       involved_branches: Dict[str, List[str]]):
        """Generator: resolve transactions that touched the crashed data source.

        ``involved_branches`` maps each participant name to the branch xids of
        the affected transactions on that participant (the middleware knows
        this from its transaction contexts or, after its own restart, from the
        data sources' prepared lists).
        """
        report = RecoveryReport()
        crashed_handle = self.middleware.participants[datasource_name]
        for branch_xid in involved_branches.get(datasource_name, []):
            reply = yield self.middleware.request_participant(
                crashed_handle, protocol.MSG_TXN_STATE, {"xid": branch_xid})
            state = reply.get("state") if isinstance(reply, dict) else "unknown"
            decision = self._decision_for(branch_xid)
            if state == "prepared" and decision is LogRecordType.COMMIT:
                yield self.middleware.request_participant(
                    crashed_handle, protocol.MSG_XA_COMMIT, {"xid": branch_xid})
                report.committed.append(f"{datasource_name}:{branch_xid}")
            elif state == "committed":
                report.already_finished.append(f"{datasource_name}:{branch_xid}")
            else:
                # The branch's work was lost in the crash (or the transaction
                # was never decided): abort it everywhere.  The rollback is
                # idempotent if the restarted data source already dropped it.
                yield self.middleware.request_participant(
                    crashed_handle, protocol.MSG_XA_ROLLBACK, {"xid": branch_xid})
                report.rolled_back.append(f"{datasource_name}:{branch_xid}")
                yield from self._rollback_siblings(branch_xid, datasource_name,
                                                   involved_branches, report)
        return report

    def _rollback_siblings(self, failed_branch: str, crashed_name: str,
                           involved_branches: Dict[str, List[str]],
                           report: RecoveryReport):
        global_txn_id = failed_branch.rsplit(".", 1)[0]
        for name, branches in involved_branches.items():
            if name == crashed_name:
                continue
            handle = self.middleware.participants[name]
            for branch_xid in branches:
                if not branch_xid.startswith(global_txn_id + "."):
                    continue
                yield self.middleware.request_participant(
                    handle, protocol.MSG_XA_ROLLBACK, {"xid": branch_xid})
                report.rolled_back.append(f"{name}:{branch_xid}")
