"""The statistical-equivalence suite: the safety net for ordering-relaxed
engine optimizations.

The byte-identical golden pins (``test_golden_summary.py``) freeze one event
interleaving; this suite instead asserts the properties that must survive ANY
legal same-timestamp reordering:

1. per-seed bit-determinism of the engine,
2. the paper's headline system ordering (GeoTP >= SSP under contention,
   aggregated across seeds),
3. committed counts and the abort mix within a tolerance band of the
   reference capture taken on the ordering-strict engine
   (``tests/bench/data/equivalence_reference.json``).

CI runs this file explicitly in the test job; see EXPERIMENTS.md for the
procedure to refresh the reference after a future deliberate ordering change.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.equivalence import (
    CASES,
    DEFAULT_SEEDS,
    check_determinism,
    check_tolerance,
    check_trend,
    load_reference,
    run_case,
    snapshot,
)

REFERENCE_PATH = os.path.join(os.path.dirname(__file__), "data",
                              "equivalence_reference.json")


@pytest.fixture(scope="module")
def reference():
    return load_reference(REFERENCE_PATH)


@pytest.fixture(scope="module", params=[case.name for case in CASES])
def case_results(request):
    case = next(c for c in CASES if c.name == request.param)
    return case, run_case(case)


def test_reference_capture_covers_every_case_and_seed(reference):
    for case in CASES:
        ref_case = reference["cases"][case.name]
        for system in case.systems:
            assert set(ref_case[system]) == {str(seed) for seed in case.seeds}


def test_cases_run_at_least_three_seeds():
    assert len(DEFAULT_SEEDS) >= 3
    for case in CASES:
        assert len(case.seeds) >= 3


def test_engine_is_bit_deterministic_per_seed(case_results):
    case, results = case_results
    violations = []
    check_determinism(case, results, violations)
    assert not violations, "\n".join(violations)


def test_paper_trend_geotp_beats_ssp_across_seeds(case_results):
    case, results = case_results
    violations = []
    check_trend(case, results, violations)
    assert not violations, "\n".join(violations)


def test_committed_and_abort_mix_within_reference_band(case_results, reference):
    case, results = case_results
    violations = []
    check_tolerance(case, results, reference, violations)
    assert not violations, "\n".join(violations)


def test_snapshot_digest_detects_any_sample_change():
    config = CASES[0].config("geotp", CASES[0].seeds[0])
    first = snapshot(config)
    second = snapshot(config)
    assert first == second
    assert first["latency_sha256"] == second["latency_sha256"]


def test_equivalence_suite_holds_on_the_other_engine(engine, goldens_runner):
    """Cross-engine safety net: the non-active kernel must satisfy the same
    determinism/trend/tolerance checks.  The active engine is already covered
    in-process by the tests above, so that param is skipped; the subprocess
    runs only the first case to bound the cost (each engine's own CI job runs
    the full suite in-process)."""
    from repro.sim.engine import active_engine

    if engine == active_engine():
        pytest.skip("active engine covered in-process by the tests above")
    document = goldens_runner(engine, "equivalence",
                              "--reference", REFERENCE_PATH,
                              "--cases", CASES[0].name)
    assert document["ok"], "\n".join(document["violations"])
