"""The registered ``load_sweep`` scenario family: knee, memory, determinism.

Four properties make an open-system sweep trustworthy:

* **The knee is visible** — past saturation, goodput plateaus or declines
  while tail latency and the drop rate explode.  A sweep that cannot show
  this is measuring the closed-loop world with extra steps.
* **Streaming metrics change nothing** — at reduced scale the reservoirs hold
  every sample, so the streaming collector must agree with the retained one
  exactly on every reported number.
* **Memory stays flat** — a 10x longer saturated point must not cost 10x the
  RSS.  Asserted on fresh subprocesses (``ru_maxrss`` is a process-lifetime
  high-water mark, so in-process measurements would only compound).
* **Same-seed runs are byte-identical on every engine** — the arrival stream,
  the pool's shed/reuse churn and the reservoirs all replay bit for bit
  (pinned via the ``load_sweep`` determinism golden).
"""

import json
import subprocess
import sys

import pytest

from repro.bench.parallel import SweepRunner
from repro.bench.runner import run_experiment
from repro.bench.scenarios import get_scenario
from repro.workloads.arrivals import ARRIVAL_PROCESSES

#: Reduced-scale overrides shared by every sweep in this module: a fully
#: preloaded 1k-row table, a 128-session pool, 6 simulated seconds.
SCALE = dict(duration_ms=6_000.0, warmup_ms=1_000.0,
             ycsb__records_per_node=1_000, ycsb__preload_rows_per_node=1_000,
             arrival__max_clients=128)

#: Offered rates bracketing the reduced-scale knee (geotp saturates ~80 tps
#: at this scale; 320/640 are 4-8x past it).
RATES = (40.0, 80.0, 320.0, 640.0)


# -------------------------------------------------------------------- registry
def test_scenario_is_registered_with_system_and_rate_axes():
    scenario = get_scenario("load_sweep")
    axes = {axis.name for axis in scenario.axes}
    assert axes == {"system", "rate_tps"}
    assert scenario.base.arrival is not None
    assert scenario.base.arrival.process == "poisson"
    # The scenario table is fully materialised at load time so the modelled
    # database is identical at every run length (see _open_system_ycsb).
    assert scenario.base.ycsb.preload_rows_per_node >= \
        scenario.base.ycsb.records_per_node


def test_load_shapes_scenario_covers_every_arrival_process():
    scenario = get_scenario("load_shapes")
    shape_axis = next(a for a in scenario.axes if a.name == "process")
    assert set(shape_axis.values) == set(ARRIVAL_PROCESSES)


# ------------------------------------------------------------------------ knee
@pytest.fixture(scope="module")
def knee_curve():
    sweep = get_scenario("load_sweep").sweep(
        axes={"system": ["geotp"], "rate_tps": list(RATES)}, **SCALE)
    summaries = SweepRunner(max_workers=1).run(sweep).summaries()
    return dict(zip(RATES, summaries))


def test_goodput_declines_past_the_knee(knee_curve):
    peak = max(s.throughput_tps for s in knee_curve.values())
    assert knee_curve[80.0].throughput_tps == pytest.approx(peak)
    # 8x past the knee the system thrashes: goodput is *below* the peak, not
    # merely flat — offered load is not achieved load.
    assert knee_curve[640.0].throughput_tps < 0.5 * peak


def test_tail_latency_explodes_past_the_knee(knee_curve):
    before = knee_curve[40.0].p99_latency_ms
    past = max(knee_curve[320.0].p99_latency_ms,
               knee_curve[640.0].p99_latency_ms)
    assert past >= 5.0 * before


def test_pool_sheds_hard_past_the_knee(knee_curve):
    assert knee_curve[40.0].open_loop["drop_rate"] == 0.0
    assert knee_curve[640.0].open_loop["drop_rate"] > 0.5


def test_every_point_reports_streaming_books_and_rss(knee_curve):
    for summary in knee_curve.values():
        assert summary.metrics_mode == "streaming"
        assert summary.open_loop["offered"] == \
            summary.open_loop["started"] + summary.open_loop["dropped"]
        assert summary.peak_rss_bytes > 0
        if summary.admission is not None:
            assert summary.admission["admitted"] >= 0


# ------------------------------------------------- streaming == retained (pin)
def test_streaming_and_retained_collectors_agree_exactly():
    sweep = get_scenario("load_sweep").sweep(
        axes={"system": ["geotp"], "rate_tps": [320.0]}, **SCALE)
    config = sweep.points()[0].config
    streaming = run_experiment(config)
    from dataclasses import replace
    retained = run_experiment(replace(config, streaming_metrics=False))
    assert streaming.metrics_mode == "streaming"
    assert retained.metrics_mode == "retained"
    # Below reservoir capacity the estimator holds the full stream: every
    # reported number — not just the exact counters — must agree.
    assert streaming.committed == retained.committed
    assert streaming.aborted == retained.aborted
    assert streaming.throughput_tps == retained.throughput_tps
    assert streaming.p99_latency_ms == retained.p99_latency_ms
    assert streaming.average_latency_ms == pytest.approx(
        retained.average_latency_ms)
    assert streaming.open_loop == retained.open_loop


# ----------------------------------------------------------------- determinism
def test_load_sweep_determinism_holds_on_every_engine(engine, goldens_runner):
    # Config: repro.bench.goldens.load_sweep_config() — one saturated point.
    document = goldens_runner(engine, "determinism", "load_sweep")
    assert document["identical"], (
        f"load_sweep diverged on the {engine} engine: "
        f"{document['first']} != {document['second']}")


# ---------------------------------------------------------------------- memory
_RSS_PROBE = """
import json, sys
from repro.bench.scenarios import get_scenario
from repro.bench.runner import run_experiment
from repro.metrics.resources import process_peak_rss_bytes
sweep = get_scenario("load_sweep").sweep(
    axes={"system": ["geotp"], "rate_tps": [320.0]},
    duration_ms=float(sys.argv[1]), warmup_ms=1_000.0,
    ycsb__records_per_node=1_000, ycsb__preload_rows_per_node=1_000,
    arrival__max_clients=128)
summary = run_experiment(sweep.points()[0].config)
print(json.dumps({"completed": summary.open_loop["completed"],
                  "peak_rss_bytes": process_peak_rss_bytes()}))
"""


def probe_rss(duration_ms):
    from tests.conftest import REPO_ROOT, subprocess_env
    from repro.sim.engine import active_engine

    proc = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, str(duration_ms)],
        capture_output=True, text=True, env=subprocess_env(active_engine()),
        cwd=REPO_ROOT, check=False)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_saturated_point_rss_is_flat_in_run_length():
    # The acceptance bar at demo scale (10^4 vs 10^6 transactions) is peak
    # RSS <= 2x; this is the same measurement shrunk to test runtime: 10x the
    # simulated time past the knee must stay within 2x the RSS — a linear
    # leak of any kind (samples, finished processes, WAL records, agent
    # bookkeeping) fails it immediately.
    short = probe_rss(20_000.0)
    long = probe_rss(200_000.0)
    assert long["completed"] >= 5 * short["completed"]
    assert long["peak_rss_bytes"] <= 2.0 * short["peak_rss_bytes"], (
        f"RSS grew {long['peak_rss_bytes'] / short['peak_rss_bytes']:.2f}x "
        f"over a 10x longer saturated run")
