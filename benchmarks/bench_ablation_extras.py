"""Design-choice ablations beyond the paper's figures (EWMA alpha, footprint size, retries)."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import extra_design_ablations


def test_extra_design_ablations(benchmark):
    result = benchmark.pedantic(
        lambda: extra_design_ablations(duration_ms=BENCH_DURATION_MS,
                                       terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)
    # Every configuration must still produce useful throughput — these knobs
    # trade accuracy for overhead, they must not break the system.
    for knob, points in result.items():
        for _value, throughput in points:
            assert throughput > 0, f"{knob} produced zero throughput"
