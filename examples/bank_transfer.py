"""Cross-border bank transfer: driving individual transactions by hand.

This example mirrors the running example of the paper's introduction and
Figure 3: Alice's account lives in a MySQL data source in Singapore, Bob's in a
PostgreSQL data source in Beijing, and a money transfer must update both
atomically.  Instead of the experiment runner it uses the lower-level cluster
API, submits explicit transactions (including one written as SQL text fed to
the parser) and inspects the resulting balances and latency.

Usage::

    python examples/bank_transfer.py
"""

from repro import TopologyConfig, TransactionSpec, build_cluster
from repro.cluster.topology import DataNodeSpec, MiddlewareSpec
from repro.common import Operation, OpType
from repro.middleware import ModuloPartitioner, SqlParser


def build_bank_cluster(system: str):
    topology = TopologyConfig(
        data_nodes=[
            DataNodeSpec(name="ds0", region="beijing", dialect="postgresql"),
            DataNodeSpec(name="ds1", region="singapore", dialect="mysql"),
        ],
        middlewares=[MiddlewareSpec(name="dm", region="beijing")],
    )
    partitioner = ModuloPartitioner(topology.node_names())
    cluster = build_cluster(system, topology, partitioner)
    # Accounts: even-numbered accounts live in Beijing, odd ones in Singapore.
    cluster.datasources["ds0"].load_table("savings", {0: {"balance": 1000}})   # Bob
    cluster.datasources["ds1"].load_table("savings", {1: {"balance": 500}})    # Alice
    return cluster, partitioner


def transfer_spec(amount: int) -> TransactionSpec:
    """Alice (account 1, Singapore) sends ``amount`` to Bob (account 0, Beijing)."""
    operations = [
        Operation(OpType.UPDATE, "savings", 1, value={"balance": 500 - amount}),
        Operation(OpType.UPDATE, "savings", 0, value={"balance": 1000 + amount}),
    ]
    return TransactionSpec.from_operations(operations, txn_type="transfer")


def run_transfer(system: str) -> None:
    cluster, _partitioner = build_bank_cluster(system)
    env = cluster.env
    middleware = cluster.middleware

    # One transfer built programmatically...
    proc = middleware.submit(transfer_spec(100))
    env.run(until=proc)
    result = proc.value

    # ...and one written as annotated SQL, going through the parser.
    parser = SqlParser()
    sql_spec = parser.parse_transaction([
        "BEGIN;",
        "UPDATE savings SET balance = 350 WHERE key = 1;",
        "UPDATE savings SET balance = 1150 WHERE key = 0 /*+ LAST */;",
        "COMMIT;",
    ], txn_type="transfer")
    proc2 = middleware.submit(sql_spec)
    env.run(until=proc2)
    result2 = proc2.value

    def balance_of(node, account):
        value = cluster.datasources[node].engine.read("probe", "savings", account).value
        # Programmatic transfers store a row dict; the SQL path stores the bare
        # column value the parser extracted.
        return value["balance"] if isinstance(value, dict) else value

    print(f"[{system:5s}] transfer #1: {result.outcome.value} in {result.latency_ms:.1f} ms, "
          f"transfer #2: {result2.outcome.value} in {result2.latency_ms:.1f} ms")
    print(f"        balances afterwards: Bob={balance_of('ds0', 0)}  "
          f"Alice={balance_of('ds1', 1)}")


def main() -> None:
    print("Cross-border transfer: Beijing (PostgreSQL) <-> Singapore (MySQL)\n")
    for system in ("ssp", "geotp"):
        run_transfer(system)
    print("\nGeoTP commits the same distributed transfer roughly one WAN round "
          "trip faster than the XA baseline (decentralized prepare).")


if __name__ == "__main__":
    main()
