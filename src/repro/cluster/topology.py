"""Topology descriptions: where middlewares and data sources live.

The paper's default deployment places the client and the middleware in Beijing
together with one data node, and the remaining data nodes in Shanghai,
Singapore and London; the measured RTTs from the middleware are 0, 27, 73 and
251 ms (§VII-A3).  The multi-middleware experiment (Figure 15) adds a second
middleware co-located with the London data node.

A :class:`TopologyConfig` captures data nodes (with region and SQL dialect),
middlewares (with per-node RTT overrides or latency models) and cluster-wide
settings such as the LAN RTT between a geo-agent and its data source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.latency import ConstantLatency, LatencyModel

#: Round-trip times (ms) between the regions used in the paper, measured from
#: public cloud latency tables; exact values only matter for the inter-agent
#: links (early abort) and the multi-middleware experiment.
_REGION_RTT_MS = {
    frozenset(["beijing"]): 0.0,
    frozenset(["shanghai"]): 0.0,
    frozenset(["singapore"]): 0.0,
    frozenset(["london"]): 0.0,
    frozenset(["beijing", "shanghai"]): 27.0,
    frozenset(["beijing", "singapore"]): 73.0,
    frozenset(["beijing", "london"]): 251.0,
    frozenset(["shanghai", "singapore"]): 62.0,
    frozenset(["shanghai", "london"]): 226.0,
    frozenset(["singapore", "london"]): 175.0,
}

#: Region order used by the default paper topology.
PAPER_REGIONS = ["beijing", "shanghai", "singapore", "london"]


def region_rtt_ms(region_a: str, region_b: str) -> float:
    """Round-trip time between two named regions (0 within a region)."""
    key = frozenset([region_a.lower(), region_b.lower()])
    if key not in _REGION_RTT_MS:
        raise KeyError(f"no RTT known between {region_a!r} and {region_b!r}")
    return _REGION_RTT_MS[key]


@dataclass
class DataNodeSpec:
    """One data source node."""

    name: str
    region: str = "beijing"
    dialect: str = "mysql"
    #: Explicit RTT from the (first) middleware; overrides the region matrix.
    rtt_to_dm_ms: Optional[float] = None
    #: Full latency model for the middleware link (overrides ``rtt_to_dm_ms``).
    latency_model: Optional[LatencyModel] = None


@dataclass
class MiddlewareSpec:
    """One middleware node."""

    name: str = "dm"
    region: str = "beijing"
    #: Per-data-node RTT overrides (ms).
    rtt_overrides: Dict[str, float] = field(default_factory=dict)
    #: Per-data-node latency models (override everything else).
    latency_models: Dict[str, LatencyModel] = field(default_factory=dict)
    #: Number of client terminals attached to this middleware (used by the
    #: multi-middleware experiment; 0 means "decided by the experiment").
    terminals: int = 0


@dataclass
class TopologyConfig:
    """The full cluster layout."""

    data_nodes: List[DataNodeSpec]
    middlewares: List[MiddlewareSpec] = field(default_factory=lambda: [MiddlewareSpec()])
    #: Geo-agent <-> data source round trip.
    lan_rtt_ms: float = 0.5
    lock_wait_timeout_ms: float = 5000.0

    def __post_init__(self) -> None:
        if not self.data_nodes:
            raise ValueError("a topology needs at least one data node")
        if not self.middlewares:
            raise ValueError("a topology needs at least one middleware")
        names = [node.name for node in self.data_nodes]
        if len(set(names)) != len(names):
            raise ValueError("data node names must be unique")
        dm_names = [dm.name for dm in self.middlewares]
        if len(set(dm_names)) != len(dm_names):
            # Transaction ids are prefixed with the middleware name; recovery
            # ownership and per-middleware attribution both key on that
            # prefix, so duplicates would silently merge two coordinators.
            raise ValueError("middleware names must be unique")

    # -------------------------------------------------------------- accessors
    def node_names(self) -> List[str]:
        """Names of all data nodes, in declaration order."""
        return [node.name for node in self.data_nodes]

    def node(self, name: str) -> DataNodeSpec:
        """The spec of data node ``name``."""
        for node in self.data_nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def middleware_link_model(self, middleware: MiddlewareSpec,
                              node: DataNodeSpec) -> LatencyModel:
        """Latency model of the link between a middleware and a data node."""
        if node.name in middleware.latency_models:
            return middleware.latency_models[node.name]
        if node.name in middleware.rtt_overrides:
            return ConstantLatency(middleware.rtt_overrides[node.name])
        if middleware is self.middlewares[0]:
            if node.latency_model is not None:
                return node.latency_model
            if node.rtt_to_dm_ms is not None:
                return ConstantLatency(node.rtt_to_dm_ms)
        return ConstantLatency(region_rtt_ms(middleware.region, node.region))

    def inter_node_rtt_ms(self, node_a: DataNodeSpec, node_b: DataNodeSpec) -> float:
        """RTT between two data nodes (region matrix, falling back to DM RTT sums)."""
        if node_a.name == node_b.name:
            return 0.0
        try:
            return region_rtt_ms(node_a.region, node_b.region)
        except KeyError:
            dm = self.middlewares[0]
            rtt_a = self.middleware_link_model(dm, node_a).rtt_at(0.0)
            rtt_b = self.middleware_link_model(dm, node_b).rtt_at(0.0)
            return max(rtt_a, rtt_b)

    # -------------------------------------------------------------- factories
    @classmethod
    def paper_default(cls, num_nodes: int = 4, dialects: Optional[Sequence[str]] = None,
                      lock_wait_timeout_ms: float = 5000.0) -> "TopologyConfig":
        """The paper's default deployment: Beijing / Shanghai / Singapore / London."""
        if not 1 <= num_nodes <= len(PAPER_REGIONS):
            raise ValueError(f"num_nodes must be between 1 and {len(PAPER_REGIONS)}")
        dialects = list(dialects or [])
        nodes = []
        for index in range(num_nodes):
            dialect = dialects[index] if index < len(dialects) else "mysql"
            nodes.append(DataNodeSpec(name=f"ds{index}", region=PAPER_REGIONS[index],
                                      dialect=dialect))
        return cls(data_nodes=nodes, middlewares=[MiddlewareSpec(region="beijing")],
                   lock_wait_timeout_ms=lock_wait_timeout_ms)

    @classmethod
    def from_rtts(cls, rtts_ms: Sequence[float], dialects: Optional[Sequence[str]] = None,
                  lock_wait_timeout_ms: float = 5000.0) -> "TopologyConfig":
        """A synthetic topology with explicit middleware RTTs per node."""
        if not rtts_ms:
            raise ValueError("at least one RTT is required")
        dialects = list(dialects or [])
        nodes = []
        for index, rtt in enumerate(rtts_ms):
            dialect = dialects[index] if index < len(dialects) else "mysql"
            nodes.append(DataNodeSpec(name=f"ds{index}", region=f"region{index}",
                                      dialect=dialect, rtt_to_dm_ms=float(rtt)))
        return cls(data_nodes=nodes, middlewares=[MiddlewareSpec()],
                   lock_wait_timeout_ms=lock_wait_timeout_ms)

    @classmethod
    def from_latency_models(cls, models: Sequence[LatencyModel],
                            lock_wait_timeout_ms: float = 5000.0) -> "TopologyConfig":
        """A synthetic topology with a full latency model per node (Figs. 10–11)."""
        if not models:
            raise ValueError("at least one latency model is required")
        nodes = [DataNodeSpec(name=f"ds{index}", region=f"region{index}",
                              latency_model=model)
                 for index, model in enumerate(models)]
        return cls(data_nodes=nodes, middlewares=[MiddlewareSpec()],
                   lock_wait_timeout_ms=lock_wait_timeout_ms)

    @classmethod
    def multi_middleware(cls, num_nodes: int = 4,
                         lock_wait_timeout_ms: float = 5000.0,
                         num_middlewares: int = 2,
                         middleware_regions: Optional[Sequence[str]] = None,
                         ) -> "TopologyConfig":
        """K middlewares sharing the same data nodes.

        The default (``num_middlewares=2``, no explicit regions) is the
        paper's Figure 15 layout: one middleware in Beijing, one co-located
        with the last (most remote) data node.  Other K default to a
        co-located fleet — every middleware in Beijing next to the clients —
        which is the load-balancing/failover deployment the ``fleet_*``
        scenarios measure; pass ``middleware_regions`` to spread them.
        """
        if num_middlewares < 1:
            raise ValueError("num_middlewares must be >= 1")
        topology = cls.paper_default(num_nodes=num_nodes,
                                     lock_wait_timeout_ms=lock_wait_timeout_ms)
        if middleware_regions is None:
            if num_middlewares == 2:
                middleware_regions = ["beijing", topology.data_nodes[-1].region]
            else:
                middleware_regions = ["beijing"] * num_middlewares
        if len(middleware_regions) != num_middlewares:
            raise ValueError("middleware_regions must name one region per "
                             "middleware")
        topology.middlewares = [
            MiddlewareSpec(name=f"dm{index + 1}", region=region)
            for index, region in enumerate(middleware_regions)]
        return topology
