"""Deployment: instantiate a full simulated cluster for one system under test.

``build_cluster`` wires up the network, data sources, geo-agents (for systems
whose plugin declares ``needs_agents``) and one middleware per
:class:`~repro.cluster.topology.MiddlewareSpec`.  Which systems exist, how
their coordinators are constructed and how their links are wired is decided
entirely by the :mod:`repro.plugins` system registry: every coordinator module
registers a :class:`~repro.plugins.SystemPlugin` carrying its builder and
capability flags, and this module consumes only those capabilities — it never
compares system names.  ``python -m repro.bench list --systems`` prints the
live registry; adding a system is one self-registering module, with no edits
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.topology import MiddlewareSpec, TopologyConfig
from repro.core import GeoAgent, GeoAgentConfig, GeoTPConfig
from repro.middleware.middleware import (
    MiddlewareBase,
    MiddlewareConfig,
    ParticipantHandle,
)
from repro.middleware.router import Partitioner
from repro.plugins import (
    BuildContext,
    SystemPlugin,
    get_system_plugin,
    normalize_system,
    system_names,
)
from repro.sim.environment import Environment
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.storage.datasource import DataSource, DataSourceConfig
from repro.storage.dialects import dialect_by_name

if TYPE_CHECKING:  # annotation only: deployment knows no concrete system
    from repro.baselines.scalardb import ScalarDBConfig


def __getattr__(name: str):
    # ``SUPPORTED_SYSTEMS`` is derived from the registry (in registration
    # order) instead of being a closed tuple; computing it lazily keeps plugin
    # loading off this module's import path.
    if name == "SUPPORTED_SYSTEMS":
        return tuple(system_names())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class Cluster:
    """A fully wired simulated deployment."""

    env: Environment
    network: Network
    topology: TopologyConfig
    system: str
    partitioner: Partitioner
    datasources: Dict[str, DataSource]
    agents: Dict[str, GeoAgent] = field(default_factory=dict)
    middlewares: List[MiddlewareBase] = field(default_factory=list)

    @property
    def middleware(self) -> MiddlewareBase:
        """The first (often only) middleware."""
        return self.middlewares[0]

    def middleware_named(self, name: str) -> MiddlewareBase:
        """The middleware called ``name`` (fault targets, fleet tests)."""
        for middleware in self.middlewares:
            if middleware.name == name:
                return middleware
        known = ", ".join(m.name for m in self.middlewares)
        raise KeyError(f"no middleware named {name!r} (known: {known})")

    def load_workload(self, workload) -> None:
        """Bulk-load a workload's initial data into the data sources."""
        workload.load_into(self.datasources)


def build_cluster(system: str, topology: TopologyConfig, partitioner: Partitioner,
                  env: Optional[Environment] = None,
                  middleware_config: Optional[MiddlewareConfig] = None,
                  geotp_config: Optional[GeoTPConfig] = None,
                  scalardb_config: Optional[ScalarDBConfig] = None,
                  seed: int = 0) -> Cluster:
    """Build a cluster running ``system`` on ``topology``.

    The ``partitioner`` must be built over ``topology.node_names()`` (workloads
    provide one via :meth:`~repro.workloads.base.Workload.make_partitioner`).
    """
    plugin = get_system_plugin(system)
    system = plugin.name
    env = env or Environment()
    network = Network(env)

    datasources = _build_datasources(env, network, topology)
    agents: Dict[str, GeoAgent] = {}
    if plugin.needs_agents:
        agents = _build_agents(env, network, topology, geotp_config)

    middlewares: List[MiddlewareBase] = []
    for index, dm_spec in enumerate(topology.middlewares):
        _wire_middleware_links(network, topology, dm_spec, plugin, agents)
        participants = _participant_handles(topology, agents)
        config = middleware_config or MiddlewareConfig()
        config = MiddlewareConfig(
            name=dm_spec.name, analysis_cost_ms=config.analysis_cost_ms,
            log_flush_cost_ms=config.log_flush_cost_ms,
            request_overhead_ms=config.request_overhead_ms,
            connection_pool_capacity=config.connection_pool_capacity)
        middleware = plugin.build(BuildContext(
            env=env, network=network, middleware_config=config,
            participants=participants, partitioner=partitioner,
            geotp_config=geotp_config, scalardb_config=scalardb_config,
            seed=seed + index))
        middlewares.append(middleware)

    return Cluster(env=env, network=network, topology=topology, system=system,
                   partitioner=partitioner, datasources=datasources, agents=agents,
                   middlewares=middlewares)


# ---------------------------------------------------------------------- pieces
def _build_datasources(env: Environment, network: Network,
                       topology: TopologyConfig) -> Dict[str, DataSource]:
    datasources = {}
    for node in topology.data_nodes:
        config = DataSourceConfig(
            name=node.name,
            dialect=dialect_by_name(node.dialect),
            lock_wait_timeout_ms=topology.lock_wait_timeout_ms)
        datasources[node.name] = DataSource(env, network, config)
    return datasources


def _agent_name(node_name: str) -> str:
    return f"agent-{node_name}"


def _build_agents(env: Environment, network: Network, topology: TopologyConfig,
                  geotp_config: Optional[GeoTPConfig]) -> Dict[str, GeoAgent]:
    geotp_config = geotp_config or GeoTPConfig()
    agents = {}
    for node in topology.data_nodes:
        agent = GeoAgent(env, network, GeoAgentConfig(
            name=_agent_name(node.name), datasource=node.name,
            enable_early_abort=geotp_config.enable_early_abort))
        agents[node.name] = agent
        network.set_link(agent.name, node.name,
                         ConstantLatency(topology.lan_rtt_ms))
    # Agent-to-agent WAN links (early abort notifications).
    for i, node_a in enumerate(topology.data_nodes):
        for node_b in topology.data_nodes[i + 1:]:
            rtt = topology.inter_node_rtt_ms(node_a, node_b)
            network.set_link(_agent_name(node_a.name), _agent_name(node_b.name),
                             ConstantLatency(rtt))
    return agents


def _wire_middleware_links(network: Network, topology: TopologyConfig,
                           dm_spec: MiddlewareSpec, plugin: SystemPlugin,
                           agents: Dict[str, GeoAgent]) -> None:
    for index, node in enumerate(topology.data_nodes):
        if plugin.colocated_with_ds0:
            # The coordinator is co-located with the first data node; its cost
            # to reach other nodes is the inter-node (region-to-region) RTT.
            model = ConstantLatency(
                topology.inter_node_rtt_ms(topology.data_nodes[0], node))
        else:
            model = topology.middleware_link_model(dm_spec, node)
        endpoint = _agent_name(node.name) if node.name in agents else node.name
        network.set_link(dm_spec.name, endpoint, model)
        if node.name in agents:
            # Direct middleware <-> data source link kept for recovery traffic.
            network.set_link(dm_spec.name, node.name, model)


def _participant_handles(topology: TopologyConfig,
                         agents: Dict[str, GeoAgent]) -> Dict[str, ParticipantHandle]:
    handles = {}
    for node in topology.data_nodes:
        endpoint = _agent_name(node.name) if node.name in agents else node.name
        handles[node.name] = ParticipantHandle(
            name=node.name, endpoint=endpoint, dialect=dialect_by_name(node.dialect),
            datasource_node=node.name)
    return handles
