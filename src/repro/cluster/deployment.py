"""Deployment: instantiate a full simulated cluster for one system under test.

``build_cluster`` wires up the network, data sources, geo-agents (for GeoTP)
and one middleware per :class:`~repro.cluster.topology.MiddlewareSpec`, for any
of the supported systems:

========== =====================================================================
system      coordinator
========== =====================================================================
ssp         :class:`repro.baselines.SSPCoordinator` (XA 2PC)
ssp_local   :class:`repro.baselines.SSPLocalCoordinator` (no atomicity)
geotp       :class:`repro.core.GeoTPCoordinator` + geo-agents
quro        :class:`repro.baselines.QUROCoordinator`
chiller     :class:`repro.baselines.ChillerCoordinator`
scalardb    :class:`repro.baselines.ScalarDBCoordinator`
scalardb+   :class:`repro.baselines.ScalarDBPlusCoordinator`
yugabyte    :class:`repro.baselines.YugabyteCoordinator` (co-located with ds0)
========== =====================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines import (
    ChillerCoordinator,
    QUROCoordinator,
    ScalarDBConfig,
    ScalarDBCoordinator,
    ScalarDBPlusCoordinator,
    SSPCoordinator,
    SSPLocalCoordinator,
    YugabyteCoordinator,
)
from repro.cluster.topology import MiddlewareSpec, TopologyConfig
from repro.core import GeoAgent, GeoAgentConfig, GeoTPConfig, GeoTPCoordinator
from repro.middleware.middleware import (
    MiddlewareBase,
    MiddlewareConfig,
    ParticipantHandle,
)
from repro.middleware.router import Partitioner
from repro.sim.environment import Environment
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.rng import SeededRNG
from repro.storage.datasource import DataSource, DataSourceConfig
from repro.storage.dialects import dialect_by_name

#: Canonical system identifiers accepted by :func:`build_cluster`.
SUPPORTED_SYSTEMS = (
    "ssp", "ssp_local", "geotp", "quro", "chiller",
    "scalardb", "scalardb_plus", "yugabyte",
)

#: Systems whose middleware talks to geo-agents instead of raw data sources.
_AGENT_SYSTEMS = {"geotp"}


def _normalize_system(system: str) -> str:
    key = system.strip().lower().replace("-", "_").replace(" ", "_")
    aliases = {
        "shardingsphere": "ssp",
        "ssp(local)": "ssp_local",
        "ssp_(local)": "ssp_local",
        "ssplocal": "ssp_local",
        "scalardb+": "scalardb_plus",
        "scalardbplus": "scalardb_plus",
        "yugabytedb": "yugabyte",
    }
    key = aliases.get(key, key)
    if key not in SUPPORTED_SYSTEMS:
        raise ValueError(f"unknown system {system!r}; expected one of {SUPPORTED_SYSTEMS}")
    return key


@dataclass
class Cluster:
    """A fully wired simulated deployment."""

    env: Environment
    network: Network
    topology: TopologyConfig
    system: str
    partitioner: Partitioner
    datasources: Dict[str, DataSource]
    agents: Dict[str, GeoAgent] = field(default_factory=dict)
    middlewares: List[MiddlewareBase] = field(default_factory=list)

    @property
    def middleware(self) -> MiddlewareBase:
        """The first (often only) middleware."""
        return self.middlewares[0]

    def load_workload(self, workload) -> None:
        """Bulk-load a workload's initial data into the data sources."""
        workload.load_into(self.datasources)


def build_cluster(system: str, topology: TopologyConfig, partitioner: Partitioner,
                  env: Optional[Environment] = None,
                  middleware_config: Optional[MiddlewareConfig] = None,
                  geotp_config: Optional[GeoTPConfig] = None,
                  scalardb_config: Optional[ScalarDBConfig] = None,
                  seed: int = 0) -> Cluster:
    """Build a cluster running ``system`` on ``topology``.

    The ``partitioner`` must be built over ``topology.node_names()`` (workloads
    provide one via :meth:`~repro.workloads.base.Workload.make_partitioner`).
    """
    system = _normalize_system(system)
    env = env or Environment()
    network = Network(env)

    datasources = _build_datasources(env, network, topology)
    agents: Dict[str, GeoAgent] = {}
    if system in _AGENT_SYSTEMS:
        agents = _build_agents(env, network, topology, geotp_config)

    middlewares: List[MiddlewareBase] = []
    for index, dm_spec in enumerate(topology.middlewares):
        _wire_middleware_links(network, topology, dm_spec, system, agents)
        participants = _participant_handles(topology, system, agents)
        config = middleware_config or MiddlewareConfig()
        config = MiddlewareConfig(
            name=dm_spec.name, analysis_cost_ms=config.analysis_cost_ms,
            log_flush_cost_ms=config.log_flush_cost_ms,
            request_overhead_ms=config.request_overhead_ms,
            connection_pool_capacity=config.connection_pool_capacity)
        middleware = _build_coordinator(system, env, network, config, participants,
                                        partitioner, geotp_config, scalardb_config,
                                        seed + index)
        middlewares.append(middleware)

    return Cluster(env=env, network=network, topology=topology, system=system,
                   partitioner=partitioner, datasources=datasources, agents=agents,
                   middlewares=middlewares)


# ---------------------------------------------------------------------- pieces
def _build_datasources(env: Environment, network: Network,
                       topology: TopologyConfig) -> Dict[str, DataSource]:
    datasources = {}
    for node in topology.data_nodes:
        config = DataSourceConfig(
            name=node.name,
            dialect=dialect_by_name(node.dialect),
            lock_wait_timeout_ms=topology.lock_wait_timeout_ms)
        datasources[node.name] = DataSource(env, network, config)
    return datasources


def _agent_name(node_name: str) -> str:
    return f"agent-{node_name}"


def _build_agents(env: Environment, network: Network, topology: TopologyConfig,
                  geotp_config: Optional[GeoTPConfig]) -> Dict[str, GeoAgent]:
    geotp_config = geotp_config or GeoTPConfig()
    agents = {}
    for node in topology.data_nodes:
        agent = GeoAgent(env, network, GeoAgentConfig(
            name=_agent_name(node.name), datasource=node.name,
            enable_early_abort=geotp_config.enable_early_abort))
        agents[node.name] = agent
        network.set_link(agent.name, node.name,
                         ConstantLatency(topology.lan_rtt_ms))
    # Agent-to-agent WAN links (early abort notifications).
    for i, node_a in enumerate(topology.data_nodes):
        for node_b in topology.data_nodes[i + 1:]:
            rtt = topology.inter_node_rtt_ms(node_a, node_b)
            network.set_link(_agent_name(node_a.name), _agent_name(node_b.name),
                             ConstantLatency(rtt))
    return agents


def _wire_middleware_links(network: Network, topology: TopologyConfig,
                           dm_spec: MiddlewareSpec, system: str,
                           agents: Dict[str, GeoAgent]) -> None:
    for index, node in enumerate(topology.data_nodes):
        if system == "yugabyte":
            # The coordinator is co-located with the first data node; its cost
            # to reach other nodes is the inter-node (region-to-region) RTT.
            model = ConstantLatency(
                topology.inter_node_rtt_ms(topology.data_nodes[0], node))
        else:
            model = topology.middleware_link_model(dm_spec, node)
        endpoint = _agent_name(node.name) if node.name in agents else node.name
        network.set_link(dm_spec.name, endpoint, model)
        if node.name in agents:
            # Direct middleware <-> data source link kept for recovery traffic.
            network.set_link(dm_spec.name, node.name, model)


def _participant_handles(topology: TopologyConfig, system: str,
                         agents: Dict[str, GeoAgent]) -> Dict[str, ParticipantHandle]:
    handles = {}
    for node in topology.data_nodes:
        endpoint = _agent_name(node.name) if node.name in agents else node.name
        handles[node.name] = ParticipantHandle(
            name=node.name, endpoint=endpoint, dialect=dialect_by_name(node.dialect),
            datasource_node=node.name)
    return handles


def _build_coordinator(system: str, env: Environment, network: Network,
                       config: MiddlewareConfig,
                       participants: Dict[str, ParticipantHandle],
                       partitioner: Partitioner,
                       geotp_config: Optional[GeoTPConfig],
                       scalardb_config: Optional[ScalarDBConfig],
                       seed: int) -> MiddlewareBase:
    if system == "geotp":
        return GeoTPCoordinator(env, network, config, participants, partitioner,
                                geotp_config=geotp_config, rng=SeededRNG(seed))
    if system == "ssp":
        return SSPCoordinator(env, network, config, participants, partitioner)
    if system == "ssp_local":
        return SSPLocalCoordinator(env, network, config, participants, partitioner)
    if system == "quro":
        return QUROCoordinator(env, network, config, participants, partitioner)
    if system == "chiller":
        return ChillerCoordinator(env, network, config, participants, partitioner)
    if system == "scalardb":
        return ScalarDBCoordinator(env, network, config, participants, partitioner,
                                   scalardb_config=scalardb_config)
    if system == "scalardb_plus":
        return ScalarDBPlusCoordinator(env, network, config, participants, partitioner,
                                       scalardb_config=scalardb_config,
                                       geotp_config=geotp_config, rng=SeededRNG(seed))
    if system == "yugabyte":
        return YugabyteCoordinator(env, network, config, participants, partitioner)
    raise ValueError(f"unhandled system {system!r}")
