"""Figure 13 — comparison with a YugabyteDB-like distributed database."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig13_yugabyte


def test_fig13_vs_yugabyte(benchmark):
    result = benchmark.pedantic(
        lambda: fig13_yugabyte(contentions=("low", "medium"),
                               duration_ms=BENCH_DURATION_MS,
                               terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)

    def tput(system, contention):
        return {c: t for c, t, _l in result[system]}[contention]

    # GeoTP keeps up with (or beats) the distributed database once contention
    # appears, and beats SSP everywhere; the extreme-skew crossover the paper
    # highlights needs longer windows (see EXPERIMENTS.md).
    assert tput("geotp", "medium") >= tput("yugabyte", "medium") * 0.8
    assert tput("geotp", "low") > tput("ssp", "low")
    assert tput("geotp", "medium") > tput("ssp", "medium")
