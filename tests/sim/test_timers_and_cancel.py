"""Tests for the engine fast paths: lightweight timers, lazy cancellation,
heap compaction and daemon processes."""

import pytest

from repro.sim import Environment
from repro.sim.environment import EmptySchedule


# ------------------------------------------------------------------- call_at
def test_call_at_fires_at_the_scheduled_time():
    env = Environment()
    fired = []
    env.call_at(5.0, lambda: fired.append(env.now))
    env.call_at(2.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [2.0, 5.0]


def test_call_at_orders_like_an_equally_timed_timeout():
    env = Environment()
    order = []

    def waiter():
        yield env.timeout(3.0)
        order.append("timeout")

    env.process(waiter())
    env.call_at(3.0, lambda: order.append("timer"))
    env.run()
    # Run-to-first-yield: the process body executed inline at spawn time, so
    # its timeout entered the queue *before* the call_at timer; FIFO order at
    # equal times puts the timeout first.  (The pre-reordering engine deferred
    # the process body to an init event and the timer won instead.)
    assert order == ["timeout", "timer"]


def test_cancelled_timer_never_fires_and_clock_still_advances_past_live_events():
    env = Environment()
    fired = []
    timer = env.call_at(10.0, lambda: fired.append("dead"))
    env.call_at(20.0, lambda: fired.append("alive"))
    timer.cancel()
    assert timer.cancelled
    env.run()
    assert fired == ["alive"]
    assert env.now == 20.0


def test_cancel_is_idempotent():
    env = Environment()
    timer = env.call_at(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    env.run()


def test_cancelled_event_callbacks_do_not_run():
    env = Environment()
    fired = []
    timeout = env.timeout(4.0)
    timeout.callbacks.append(lambda e: fired.append("t"))
    env.cancel(timeout)
    env.run()
    assert fired == []


def test_heap_compaction_bounds_queue_growth():
    env = Environment()
    # Schedule and immediately cancel many far-future timers; lazy deletion
    # plus compaction must keep the heap from growing linearly.
    for _ in range(1000):
        env.call_at(1e6, lambda: None).cancel()
    assert len(env._queue) < 200


def test_peek_skips_cancelled_entries():
    env = Environment()
    dead = env.call_at(1.0, lambda: None)
    env.call_at(7.0, lambda: None)
    dead.cancel()
    assert env.peek() == 7.0


def test_step_skips_cancelled_entries_and_raises_when_empty():
    env = Environment()
    dead = env.call_at(1.0, lambda: None)
    dead.cancel()
    with pytest.raises(EmptySchedule):
        env.step()


# ------------------------------------------------------------------- daemons
def test_daemon_process_completion_skips_the_heap():
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        return "done"

    process = env.process(worker(), daemon=True)
    env.run()
    assert not process.is_alive
    assert process.processed
    assert process.value == "done"
    assert env._queue == []


def test_daemon_process_with_subscriber_still_resumes_it():
    env = Environment()
    results = []

    def worker():
        yield env.timeout(1.0)
        return 42

    def waiter(proc):
        value = yield proc
        results.append(value)

    process = env.process(worker(), daemon=True)
    env.process(waiter(process))
    env.run()
    assert results == [42]


def test_daemon_process_failure_still_surfaces():
    env = Environment()

    def boom():
        yield env.timeout(1.0)
        raise RuntimeError("daemon failed")

    env.process(boom(), daemon=True)
    with pytest.raises(RuntimeError, match="daemon failed"):
        env.run()


def test_non_daemon_completion_is_observable_before_dispatch():
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        return "v"

    process = env.process(worker())
    env.run()
    assert process.processed and process.value == "v"


# ------------------------------------------------------------ event counting
def test_events_processed_counts_events_and_timers():
    env = Environment()
    fired = []
    env.call_at(1.0, lambda: fired.append(1))

    def proc():
        yield env.timeout(2.0)

    env.process(proc())
    env.run()
    # call_at timer + timeout + process completion; run-to-first-yield spawn
    # means there is no init event to count any more.
    assert env.events_processed == 3


def test_run_until_cancelled_event_raises_instead_of_returning_sentinel():
    env = Environment()
    event = env.event()
    env.cancel(event)
    with pytest.raises(RuntimeError, match="never fire"):
        env.run(until=event)
