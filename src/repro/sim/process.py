"""Generator-based processes for the simulation engine.

A :class:`Process` wraps a Python generator.  Each ``yield`` hands an
:class:`~repro.sim.events.Event` to the environment; the generator is resumed
with the event's value once it fires.  A process is itself an event that
triggers when the generator returns (its value is the generator's return
value), so processes can wait on each other.

The resume loop is the single hottest function of the whole simulator (it runs
once per event wait), so it reads event state directly (``_ok`` / ``_value``
/ ``callbacks``) instead of going through the public properties, and the
generator's bound ``send``/``throw`` are cached at construction time.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import PENDING, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class Process(Event):
    """An active simulation process driving a generator of events."""

    __slots__ = ("name", "_generator", "_send", "_throw", "_target", "_daemon")

    def __init__(self, env: "Environment", generator: Generator, name: str = "",
                 daemon: bool = False):
        try:
            send = generator.send
            throw = generator.throw
        except AttributeError:
            raise TypeError(f"{generator!r} is not a generator") from None
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        #: Daemon processes are fire-and-forget servers: when one finishes
        #: successfully with no subscribers, its completion event skips the
        #: heap entirely (nobody could observe the dispatch).
        self._daemon = daemon
        self._generator = generator
        self._send = send
        self._throw = throw
        self._target: Any = None
        # Kick the process off at the current simulation time: an
        # already-succeeded init event goes straight onto the heap (the heap
        # round trip keeps startup ordered against same-time events).
        init = Event(env)
        init._value = None
        init.callbacks = [self._resume]
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env.now, 1, eid, init))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Any:
        """The event this process is currently waiting for (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            raise RuntimeError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        # Drop our subscription on the event we were waiting for: a process
        # interrupted while waiting must not be resumed again by that event.
        target = self._target
        if target is not None and target is not event:
            target_callbacks = target.callbacks
            if target_callbacks is not None and self._resume in target_callbacks:
                target_callbacks.remove(self._resume)
        self._target = None

        env.active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event.defused = True
                    next_event = self._throw(event._value)
            except StopIteration as stop:
                env.active_process = None
                self._ok = True
                self._value = stop.value
                if self._daemon and not self.callbacks:
                    # Fire-and-forget completion: mark processed in place.
                    self.callbacks = None
                    return
                env._eid = eid = env._eid + 1
                heappush(env._queue, (env.now, 1, eid, self))
                return
            except BaseException as exc:  # noqa: BLE001 - process failure propagates as event failure
                env.active_process = None
                self._ok = False
                self._value = exc
                env._eid = eid = env._eid + 1
                heappush(env._queue, (env.now, 1, eid, self))
                return

            if not isinstance(next_event, Event):
                env.active_process = None
                error = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}")
                self._ok = False
                self._value = error
                env._eid = eid = env._eid + 1
                heappush(env._queue, (env.now, 1, eid, self))
                return

            callbacks = next_event.callbacks
            if callbacks is None:
                # Already fired: loop immediately with its value instead of
                # round-tripping the heap.
                event = next_event
                continue

            # Subscribe and suspend.
            callbacks.append(self._resume)
            self._target = next_event
            env.active_process = None
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
