"""Figure 1b — impact of the DM-DS2 latency on centralized transactions."""

from conftest import BENCH_DURATION_MS

from repro.bench.experiments import fig1_motivation


def test_fig1b_motivation(benchmark):
    result = benchmark.pedantic(
        lambda: fig1_motivation(ds2_latencies_ms=(20, 60, 100),
                                duration_ms=BENCH_DURATION_MS, terminals=8,
                                report=True),
        rounds=1, iterations=1)
    lc = dict(result["series"]["LC"])
    mc = dict(result["series"]["MC"])
    # Centralized transactions must be hurt more by the distant DS2 latency
    # under medium contention than under low contention (the paper's motivation).
    lc_growth = lc[100] - lc[20]
    mc_growth = mc[100] - mc[20]
    assert mc_growth > lc_growth
    assert mc[100] > mc[20]
