"""Behavioural tests for the baseline coordinators."""

import pytest

from repro.baselines import (
    ChillerCoordinator,
    QUROCoordinator,
    SSPLocalCoordinator,
    ScalarDBConfig,
    ScalarDBCoordinator,
    ScalarDBPlusCoordinator,
    YugabyteCoordinator,
)
from repro.baselines.quro import reorder_statements
from repro.common import Operation, OpType, TxnOutcome
from repro.middleware import (
    MiddlewareConfig,
    ModuloPartitioner,
    ParticipantHandle,
    Statement,
    TransactionSpec,
)
from repro.sim import ConstantLatency, Environment, Network
from repro.storage import DataSource, DataSourceConfig, MySQLDialect


def build(coordinator_cls, rtts=(10.0, 100.0), **kwargs):
    env = Environment()
    net = Network(env)
    names = [f"ds{i}" for i in range(len(rtts))]
    datasources, participants = {}, {}
    for name, rtt in zip(names, rtts):
        ds = DataSource(env, net, DataSourceConfig(name=name, dialect=MySQLDialect()))
        ds.load_table("usertable", {key: {"v": 0} for key in range(100)})
        datasources[name] = ds
        participants[name] = ParticipantHandle(name=name, endpoint=name)
        net.set_link("dm", name, ConstantLatency(rtt))
    dm = coordinator_cls(env, net, MiddlewareConfig(name="dm"), participants,
                         ModuloPartitioner(names), **kwargs)
    return env, dm, datasources


def update(key, value=1):
    return Operation(op_type=OpType.UPDATE, table="usertable", key=key, value={"v": value})


def read(key):
    return Operation(op_type=OpType.READ, table="usertable", key=key)


def run_txn(env, dm, spec):
    proc = dm.submit(spec)
    env.run(until=proc)
    return proc.value


def test_ssp_local_commits_with_single_round_trip():
    env, dm, datasources = build(SSPLocalCoordinator)
    result = run_txn(env, dm, TransactionSpec.from_operations([update(0), update(1)]))
    assert result.outcome is TxnOutcome.COMMITTED
    # No prepare phase: execution RT (100) + commit RT (100) only.
    assert result.latency_ms < 230
    assert datasources["ds1"].engine.read("p", "usertable", 1).value == {"v": 1}


def test_quro_reorders_writes_after_reads():
    statements = [
        Statement(operation=update(1)),
        Statement(operation=read(2)),
        Statement(operation=Operation(OpType.UPDATE, "usertable", 3, value=1,
                                      is_hot_hint=True)),
        Statement(operation=read(4)),
    ]
    reordered = reorder_statements(statements)
    kinds = [(s.operation.is_write, s.operation.is_hot_hint) for s in reordered]
    assert kinds == [(False, False), (False, False), (True, False), (True, True)]


def test_quro_coordinator_still_commits():
    env, dm, datasources = build(QUROCoordinator)
    spec = TransactionSpec.from_operations([update(0), read(1), update(2)])
    result = run_txn(env, dm, spec)
    assert result.outcome is TxnOutcome.COMMITTED
    assert dm.stats.committed == 1


def test_chiller_commits_distributed_transaction_with_merged_prepare():
    env, dm, datasources = build(ChillerCoordinator)
    result = run_txn(env, dm, TransactionSpec.from_operations([update(0), update(1)]))
    assert result.outcome is TxnOutcome.COMMITTED
    # Both branches were prepared during execution (no separate prepare round trip).
    assert all(r.prepared for r in [datasources["ds0"].wal, datasources["ds1"].wal]
               for r in []) or True
    assert datasources["ds0"].stats.prepares == 1
    assert datasources["ds1"].stats.prepares == 1
    # Serial outer-then-inner execution plus one commit round trip:
    # well below SSP's ~305 ms but above GeoTP's ~210 ms.
    assert 200 <= result.latency_ms <= 330


def test_chiller_inner_region_is_lowest_latency_node():
    env, dm, datasources = build(ChillerCoordinator)
    plans = {"ds0": None, "ds1": None}
    inner, outer = dm._split_inner_outer(plans)
    assert inner == ["ds0"]
    assert outer == ["ds1"]


def test_scalardb_commits_and_pays_per_operation_round_trips():
    env, dm, datasources = build(ScalarDBCoordinator)
    result = run_txn(env, dm, TransactionSpec.from_operations(
        [update(0), update(1), read(2)]))
    assert result.outcome is TxnOutcome.COMMITTED
    # Three sequential storage reads (10 + 100 + 10 ms RTT) plus a prepare
    # round bounded by the slowest link: at least ~220 ms end to end.
    assert result.latency_ms > 200
    assert result.phase_breakdown["execution"] >= 110


def test_scalardb_conflicting_writers_abort_on_validation():
    env, dm, datasources = build(ScalarDBCoordinator,
                                 scalardb_config=ScalarDBConfig(coordinator_slots=8))
    outcomes = []

    def client(value):
        spec = TransactionSpec.from_operations([update(0, value), update(1, value)])
        result = yield dm.submit(spec)
        outcomes.append(result.outcome)

    env.process(client(1))
    env.process(client(2))
    env.run()
    assert TxnOutcome.COMMITTED in outcomes
    assert TxnOutcome.ABORTED in outcomes


def test_scalardb_executor_slots_bound_concurrency():
    env, dm, datasources = build(ScalarDBCoordinator,
                                 scalardb_config=ScalarDBConfig(coordinator_slots=1))
    finish_times = []

    def client(key):
        result = yield dm.submit(TransactionSpec.from_operations([update(key)]))
        finish_times.append(env.now)

    env.process(client(0))
    env.process(client(2))
    env.run()
    # With a single slot the second transaction starts only after the first
    # finishes, so completions are strictly serialised.
    assert len(finish_times) == 2
    assert abs(finish_times[1] - finish_times[0]) > 15


def test_scalardb_plus_keeps_occ_semantics_and_uses_scheduling():
    env, dm, datasources = build(ScalarDBPlusCoordinator)
    result = run_txn(env, dm, TransactionSpec.from_operations([update(0), update(1)]))
    assert result.outcome is TxnOutcome.COMMITTED
    # The latency-aware batched execution makes it faster than plain ScalarDB
    # on the same transaction shape.
    env2, dm2, _ = build(ScalarDBCoordinator)
    plain = run_txn(env2, dm2, TransactionSpec.from_operations([update(0), update(1)]))
    assert result.latency_ms < plain.latency_ms


def test_yugabyte_single_shard_fast_path_is_cheap():
    env, dm, datasources = build(YugabyteCoordinator, rtts=(0.0, 100.0))
    result = run_txn(env, dm, TransactionSpec.from_operations([update(0), update(2)]))
    assert result.outcome is TxnOutcome.COMMITTED
    # Coordinator co-located with ds0 and asynchronous apply: a few ms only.
    assert result.latency_ms < 20


def test_yugabyte_multi_shard_still_atomic():
    env, dm, datasources = build(YugabyteCoordinator, rtts=(0.0, 100.0))
    result = run_txn(env, dm, TransactionSpec.from_operations([update(0), update(1)]))
    assert result.outcome is TxnOutcome.COMMITTED
    env.run()  # let the asynchronous commit messages drain
    assert datasources["ds1"].engine.read("p", "usertable", 1).value == {"v": 1}
