"""Measurement utilities: latency/throughput collection, percentiles, breakdowns."""

from repro.metrics.availability import (
    AvailabilityReport,
    build_availability,
    middleware_of,
    per_middleware_attribution,
    per_middleware_availability,
)
from repro.metrics.collector import MetricsCollector, TransactionSample
from repro.metrics.percentiles import LatencyDistribution, percentile
from repro.metrics.timeline import ThroughputTimeline
from repro.metrics.breakdown import PhaseBreakdown
from repro.metrics.resources import ResourceUsage

__all__ = [
    "AvailabilityReport",
    "LatencyDistribution",
    "MetricsCollector",
    "PhaseBreakdown",
    "ResourceUsage",
    "ThroughputTimeline",
    "TransactionSample",
    "build_availability",
    "middleware_of",
    "per_middleware_attribution",
    "per_middleware_availability",
    "percentile",
]
