"""The registered fleet scenario family: determinism, availability, accounting.

The acceptance bar for the failover experiment, pinned as tests:

* **Same-seed byte-determinism** — routing, refusal-driven detection, the
  health probe, retry jitter and recovery are all on the simulation clock, so
  the same config must reproduce the same summary *and* the same fleet report
  (both engines, via the goldens runner).
* **Availability** — killing one of three middlewares keeps availability at
  >= 90 % of the fault-free run's.
* **Zero lost / duplicated transactions** — per-middleware attribution sums
  exactly to the collector totals and every transaction id is unique.
* **Reporting** — failovers, per-middleware attribution and time-to-divert
  all surface in the picklable ``ExperimentSummary``.
"""

import hashlib

import pytest

from repro.bench.goldens import fleet_failover_config
from repro.bench.parallel import SweepRunner
from repro.bench.scenarios import FLEET_SYSTEMS, get_scenario
from repro.bench.runner import run_experiment
from repro.metrics.availability import build_availability

FLEET_SCENARIOS = ("fleet_scaleout", "fleet_failover", "fleet_policies")

#: Reduced scale shared by every test here (mirrors the fault-family tests).
SCALE = dict(duration_ms=4_000.0, warmup_ms=800.0, terminals=6,
             ycsb__records_per_node=1_000, ycsb__preload_rows_per_node=200)


def run_point(scenario_name, system, seed=0, fault_free=False, **axes):
    scenario = get_scenario(scenario_name)
    sweep = scenario.sweep(axes={"system": (system,), **axes}, seed=seed,
                           **SCALE)
    points = sweep.points()
    assert len(points) == 1
    config = points[0].config
    if fault_free:
        config.fault_plan = None
    return run_experiment(config)


def digest(result):
    samples = list(result.latency.samples)
    return {
        "committed": result.committed,
        "aborted": result.aborted,
        "abort_reasons": result.collector.abort_reasons(),
        "latency_sha256": hashlib.sha256(repr(samples).encode()).hexdigest(),
        "faults": result.faults,
        "fleet": result.fleet,
    }


# ---------------------------------------------------------------- registration
def test_fleet_scenarios_are_registered():
    for name in FLEET_SCENARIOS:
        get_scenario(name)
    scaleout = get_scenario("fleet_scaleout")
    (count_axis,) = [axis for axis in scaleout.axes
                     if axis.name == "middleware_count"]
    assert count_axis.values == (1, 2, 3, 4)
    failover = get_scenario("fleet_failover")
    (system_axis,) = [axis for axis in failover.axes if axis.name == "system"]
    assert system_axis.values == FLEET_SYSTEMS
    policies = get_scenario("fleet_policies")
    (policy_axis,) = [axis for axis in policies.axes
                      if axis.name == "routing_policy"]
    assert set(policy_axis.values) >= {"round_robin", "region_affinity",
                                       "least_outstanding"}


def test_failover_points_carry_a_middleware_crash_inside_the_run():
    for point in get_scenario("fleet_failover").sweep(**SCALE).points():
        config = point.config
        assert config.middleware_count == 3
        (event,) = config.fault_plan.events
        assert event.target == "dm2"
        assert config.warmup_ms <= event.at_ms
        assert event.at_ms + event.duration_ms < config.duration_ms


def test_scaleout_points_use_a_co_located_fleet_for_every_k():
    for point in get_scenario("fleet_scaleout").sweep(
            axes={"system": ("geotp",)}, **SCALE).points():
        config = point.config
        if config.middleware_count == 1:
            assert config.topology is None
        else:
            regions = {m.region for m in config.topology.middlewares}
            assert regions == {"beijing"}


# ----------------------------------------------------------------- determinism
@pytest.mark.parametrize("system", FLEET_SYSTEMS)
def test_same_seed_failover_runs_are_byte_identical(system):
    first = digest(run_point("fleet_failover", system, seed=11))
    second = digest(run_point("fleet_failover", system, seed=11))
    assert first == second


def test_failover_determinism_holds_on_every_engine(engine, goldens_runner):
    # The compiled engine runs in a REPRO_ENGINE-pinned subprocess; the
    # config is repro.bench.goldens.fleet_failover_config().
    document = goldens_runner(engine, "determinism", "fleet_failover")
    assert document["identical"], (
        f"fleet_failover diverged on the {engine} engine: "
        f"{document['first']} != {document['second']}")
    assert document["first"]["fleet"]["middlewares"] == ["dm1", "dm2", "dm3"]


def test_fleet_sweep_results_identical_serial_and_parallel():
    """The fleet report must survive pickling across pool workers unchanged."""
    sweep = get_scenario("fleet_failover").sweep(
        axes={"system": ("ssp", "geotp")}, **SCALE)
    serial = SweepRunner(max_workers=1).run(sweep)
    pooled = SweepRunner(max_workers=2).run(sweep)
    for left, right in zip(serial.summaries(), pooled.summaries()):
        assert left.to_dict() == right.to_dict()
        assert left.fleet is not None and left.fleet == right.fleet


# ------------------------------------------------------------ acceptance bars
@pytest.fixture(scope="module")
def failover_run():
    return run_point("fleet_failover", "geotp", seed=3)


def test_availability_stays_at_90_percent_of_fault_free(failover_run):
    fault_free = run_point("fleet_failover", "geotp", seed=3, fault_free=True)
    baseline = build_availability(
        fault_free.collector.samples, duration_ms=4_000.0,
        start_ms=800.0).availability()
    faulted = failover_run.faults["availability"]["availability"]
    assert baseline > 0.0
    assert faulted >= 0.9 * baseline, (
        f"availability {faulted:.3f} fell below 90% of the fault-free "
        f"baseline {baseline:.3f}")


def test_no_transaction_is_lost_or_duplicated(failover_run):
    samples = failover_run.collector.samples
    ids = [sample.txn_id for sample in samples]
    assert len(ids) == len(set(ids)), "duplicated transaction ids"
    attribution = failover_run.fleet["attribution"]
    assert sum(e["committed"] for e in attribution.values()) == \
        failover_run.committed
    assert sum(e["aborted"] for e in attribution.values()) == \
        failover_run.aborted


def test_summary_reports_failovers_attribution_and_time_to_divert(failover_run):
    summary = failover_run.summary()
    fleet = summary.to_dict()["fleet"]
    assert fleet["policy"] == "round_robin"
    assert fleet["middlewares"] == ["dm1", "dm2", "dm3"]
    assert set(fleet["attribution"]) <= {"dm1", "dm2", "dm3"}
    assert fleet["failovers"] >= 0 and fleet["retries"] >= fleet["failovers"]
    episodes = [e for e in fleet["down_episodes"] if e["middleware"] == "dm2"]
    assert episodes, "the killed middleware has no down episode"
    assert episodes[0]["time_to_divert_ms"] is not None
    assert episodes[0]["time_to_divert_ms"] >= 0.0
    # The survivors absorbed real traffic during and after the crash.
    for survivor in ("dm1", "dm3"):
        assert fleet["attribution"][survivor]["committed"] > 0
    # Per-middleware availability timelines share the fleet-wide bucket grid.
    per_middleware = fleet["availability_per_middleware"]
    grids = {tuple(start for start, _, _ in report["series"])
             for report in per_middleware.values()}
    assert len(grids) == 1


def test_fleet_failover_config_matches_the_registered_scenario():
    config = fleet_failover_config()
    assert config.middleware_count == 3
    assert config.fault_plan is not None
    assert config.duration_ms == 4_000.0
