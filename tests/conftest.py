"""Shared fixtures: engine parameterization for the pure/compiled kernels.

The simulation kernel is selected once per process (``REPRO_ENGINE``), so a
test that wants to exercise *both* engines cannot simply flip a flag — the
non-active engine has to run in a fresh interpreter.  The ``engine`` fixture
parameterizes a test over every engine that can actually run here (the
compiled param skips cleanly when the mypyc core was never built, which is the
normal state on a machine without mypy), and ``goldens_runner`` evaluates a
``repro.bench.goldens`` command under a given engine: in-process when it is
the active one, otherwise in a ``REPRO_ENGINE``-pinned subprocess whose JSON
stdout is parsed and whose reported engine is verified.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.sim.engine import active_engine, compiled_available

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"

#: Every selectable engine, in the order tests should try them.
ENGINES = ("pure", "compiled")


def engine_runnable(engine: str) -> bool:
    """True when ``engine`` can execute in this environment."""
    if engine == "compiled":
        return active_engine() == "compiled" or compiled_available()
    return True


def require_engine(engine: str) -> None:
    """Skip the current test when ``engine`` cannot run here."""
    if not engine_runnable(engine):
        pytest.skip(f"{engine} engine core is not built in this environment "
                    f"(build it with `python tools/build_compiled.py`)")


@pytest.fixture(params=ENGINES)
def engine(request: pytest.FixtureRequest) -> str:
    """Parameterize a test over every runnable engine."""
    require_engine(request.param)
    return request.param


def subprocess_env(engine: str) -> Dict[str, str]:
    """Environment for a child interpreter pinned to ``engine``."""
    env = dict(os.environ)
    env["REPRO_ENGINE"] = engine
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return env


def run_goldens(engine: str, *cli_args: str) -> Dict[str, Any]:
    """Evaluate a ``repro.bench.goldens`` command under ``engine``.

    The active engine runs in-process (no interpreter start-up); any other
    engine runs in a subprocess with ``REPRO_ENGINE`` pinned.  Both paths
    return the same JSON-shaped document, and the document's self-reported
    engine is asserted so a mis-pinned subprocess cannot pass silently.
    """
    if engine == active_engine():
        from repro.bench import goldens

        command, rest = cli_args[0], list(cli_args[1:])
        if command == "snapshot":
            document = goldens.snapshot_document(rest[0])
        elif command == "determinism":
            document = goldens.determinism_document(rest[0] if rest else
                                                    "default")
        elif command == "equivalence":
            reference = rest[rest.index("--reference") + 1]
            cases = (rest[rest.index("--cases") + 1:]
                     if "--cases" in rest else None)
            document = goldens.equivalence_document(reference, cases)
        elif command == "resume":
            cache_dir = (rest[rest.index("--cache-dir") + 1]
                         if "--cache-dir" in rest else None)
            interrupt_after = (int(rest[rest.index("--interrupt-after") + 1])
                               if "--interrupt-after" in rest else 2)
            document = goldens.resume_document(cache_dir, interrupt_after)
        else:
            raise ValueError(f"unknown goldens command {command!r}")
        # Round-trip through JSON so both paths compare identically typed
        # documents (and so non-serializable snapshots fail loudly here too).
        return json.loads(json.dumps(document))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.goldens", *cli_args],
        capture_output=True, text=True, env=subprocess_env(engine),
        cwd=REPO_ROOT, check=False)
    assert proc.returncode == 0, (
        f"goldens {cli_args} failed under REPRO_ENGINE={engine}:\n{proc.stderr}")
    document = json.loads(proc.stdout)
    assert document["engine"] == engine, (
        f"subprocess reported engine {document['engine']!r}, "
        f"expected {engine!r}")
    return document


@pytest.fixture
def goldens_runner():
    """Callable ``(engine, *cli_args) -> document`` (see :func:`run_goldens`)."""
    return run_goldens
