"""Figure 12 — ablation of the three GeoTP optimizations across skew factors."""

from conftest import BENCH_DURATION_MS, BENCH_TERMINALS

from repro.bench.experiments import fig12_ablation


def test_fig12_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: fig12_ablation(skews=(0.3, 0.9, 1.5),
                               duration_ms=BENCH_DURATION_MS,
                               terminals=BENCH_TERMINALS, report=True),
        rounds=1, iterations=1)

    def tput(variant, skew):
        return {s: t for s, t, _p99, _abort in result[variant]}[skew]

    # Every GeoTP variant beats SSP at low and medium contention; at the most
    # extreme skew all systems can collapse within a short window, so the
    # comparison there is non-strict.
    for skew in (0.3, 0.9):
        assert tput("geotp_o1", skew) > tput("ssp", skew)
        assert tput("geotp_o1_o2", skew) > tput("ssp", skew)
        assert tput("geotp_o1_o3", skew) > tput("ssp", skew)
    assert tput("geotp_o1_o3", 1.5) >= tput("ssp", 1.5)
    # The high-contention optimizations matter most at high skew: O1~O3 should
    # not lose to O1 alone there.
    assert tput("geotp_o1_o3", 1.5) >= tput("geotp_o1", 1.5) * 0.9
