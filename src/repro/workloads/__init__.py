"""Workload generators: YCSB and TPC-C (the paper's evaluation) plus plugins.

Each workload module registers a :class:`~repro.plugins.WorkloadPlugin`;
``repro.bench.runner.make_workload`` and the CLI resolve workloads through
that registry, so contrib/third-party workloads (e.g.
``repro.contrib.smallbank``) need no edits in this package.
"""

from repro.plugins import get_workload_plugin, normalize_workload, workload_names
from repro.workloads.arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalConfig,
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.workloads.base import Workload, WorkloadConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload, CONTENTION_SKEW
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalConfig",
    "ArrivalProcess",
    "CONTENTION_SKEW",
    "DiurnalArrivals",
    "MMPPArrivals",
    "PoissonArrivals",
    "make_arrivals",
    "TPCCConfig",
    "TPCCWorkload",
    "Workload",
    "WorkloadConfig",
    "YCSBConfig",
    "YCSBWorkload",
    "get_workload_plugin",
    "normalize_workload",
    "workload_names",
]
