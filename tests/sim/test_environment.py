"""Unit tests for the discrete-event simulation core (environment, events, processes)."""

import pytest

from repro.sim import Environment, Event, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(10)
        yield env.timeout(5.5)

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(15.5)


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        for _ in range(100):
            yield env.timeout(10)

    env.process(proc())
    env.run(until=35)
    assert env.now == pytest.approx(35)


def test_run_until_past_time_rejected():
    env = Environment(initial_time=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_process_return_value_propagates():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return "done"

    p = env.process(proc())
    result = env.run(until=p)
    assert result == "done"


def test_process_exception_propagates_to_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise ValueError("boom")

    env.process(proc())
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_processes_interleave_in_time_order():
    env = Environment()
    log = []

    def proc(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(proc("slow", 20))
    env.process(proc("fast", 5))
    env.process(proc("medium", 10))
    env.run()
    assert log == [(5, "fast"), (10, "medium"), (20, "slow")]


def test_process_waits_on_another_process():
    env = Environment()

    def child():
        yield env.timeout(7)
        return 99

    def parent():
        value = yield env.process(child())
        return value + 1

    p = env.process(parent())
    assert env.run(until=p) == 100
    assert env.now == pytest.approx(7)


def test_event_succeed_wakes_waiter_with_value():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((env.now, value))

    def opener():
        yield env.timeout(30)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert seen == [(30, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1)
        gate.fail(RuntimeError("bad"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["bad"]


def test_event_value_unavailable_before_trigger():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(10, value="a")
        t2 = env.timeout(25, value="b")
        result = yield env.all_of([t1, t2])
        times.append(env.now)
        assert result[t1] == "a"
        assert result[t2] == "b"

    env.process(proc())
    env.run()
    assert times == [25]


def test_any_of_fires_on_first_event():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(10, value="a")
        t2 = env.timeout(25, value="b")
        result = yield env.any_of([t1, t2])
        times.append(env.now)
        assert t1 in result

    env.process(proc())
    env.run()
    assert times == [10]


def test_all_of_empty_list_fires_immediately():
    env = Environment()
    done = []

    def proc():
        yield env.all_of([])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0]


def test_interrupt_raises_inside_process():
    env = Environment()
    outcome = []

    def victim():
        try:
            yield env.timeout(1000)
            outcome.append("finished")
        except Interrupt as interrupt:
            outcome.append(("interrupted", env.now, interrupt.cause))

    def attacker(victim_proc):
        yield env.timeout(50)
        victim_proc.interrupt(cause="stop it")

    victim_proc = env.process(victim())
    env.process(attacker(victim_proc))
    env.run()
    assert outcome == [("interrupted", 50, "stop it")]


def test_cannot_interrupt_finished_process():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def bad():
        yield "not an event"

    env.process(bad())
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_yielding_a_number_sleeps_for_that_many_ms():
    env = Environment()
    log = []

    def sleeper():
        yield 7.5
        log.append(env.now)
        yield 2          # ints work too
        log.append(env.now)

    env.process(sleeper())
    env.run()
    assert log == [7.5, 9.5]


def test_yielding_a_negative_number_fails_the_process():
    env = Environment()

    def bad():
        yield -1.0

    env.process(bad())
    with pytest.raises(ValueError, match="negative delay"):
        env.run()


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    gate = env.event()
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=gate)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(12)
    assert env.peek() == pytest.approx(12)
