"""A small SQL parser for the statement shapes the benchmarks use.

The real ShardingSphere embeds a full SQL engine; the experiments only ever
issue key-predicate reads and updates, so the parser here recognises exactly
that subset plus the GeoTP annotation that marks a transaction's last
statement:

* ``BEGIN`` / ``COMMIT`` / ``ROLLBACK``
* ``SELECT <columns> FROM <table> WHERE <key_col> = <value> [FOR SHARE]``
* ``UPDATE <table> SET <col> = <value> WHERE <key_col> = <value>``
* ``INSERT INTO <table> (<key_col>, <col>) VALUES (<key>, <value>)``
* annotations: a ``/*+ LAST */`` hint (prefix or suffix comment) or a
  trailing ``/* last statement */`` comment.

Keys are returned as ``int`` when the literal looks numeric, otherwise as the
unquoted string, which matches how the workloads generate keys.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Hashable, List, Optional

from repro.common import Operation, OpType
from repro.middleware.statements import Statement, TransactionSpec


class ParseError(Exception):
    """The SQL text did not match the supported grammar."""


_ANNOTATION_RE = re.compile(r"/\*\+?\s*last(?:\s+statement)?\s*\*/", re.IGNORECASE)
_SELECT_RE = re.compile(
    r"^select\s+.+?\s+from\s+(?P<table>\w+)\s+where\s+(?P<col>\w+)\s*=\s*(?P<key>[^;\s]+)"
    r"(?:\s+for\s+share|\s+for\s+update)?\s*$",
    re.IGNORECASE | re.DOTALL)
_UPDATE_RE = re.compile(
    r"^update\s+(?P<table>\w+)\s+set\s+(?P<assignments>.+?)\s+where\s+"
    r"(?P<col>\w+)\s*=\s*(?P<key>[^;\s]+)\s*$",
    re.IGNORECASE | re.DOTALL)
_INSERT_RE = re.compile(
    r"^insert\s+into\s+(?P<table>\w+)\s*\((?P<cols>[^)]+)\)\s*values\s*\((?P<vals>[^)]+)\)\s*$",
    re.IGNORECASE | re.DOTALL)


def _unquote(literal: str) -> Hashable:
    text = literal.strip().rstrip(";")
    if (text.startswith("'") and text.endswith("'")) or \
            (text.startswith('"') and text.endswith('"')):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


@dataclass
class ParsedStatement:
    """Outcome of parsing one SQL line."""

    kind: str                       # "begin" | "commit" | "rollback" | "dml"
    statement: Optional[Statement] = None


class SqlParser:
    """Parses SQL text into :class:`Statement` objects and transaction specs."""

    def parse_statement(self, sql: str) -> ParsedStatement:
        """Parse one SQL statement (may carry a last-statement annotation)."""
        original = sql
        is_last = bool(_ANNOTATION_RE.search(sql))
        text = _ANNOTATION_RE.sub("", sql).strip().rstrip(";").strip()
        if not text:
            raise ParseError(f"empty statement: {original!r}")

        lowered = text.lower()
        if lowered == "begin" or lowered.startswith("start transaction"):
            return ParsedStatement(kind="begin")
        if lowered == "commit":
            return ParsedStatement(kind="commit")
        if lowered == "rollback":
            return ParsedStatement(kind="rollback")

        select = _SELECT_RE.match(text)
        if select:
            operation = Operation(op_type=OpType.READ, table=select.group("table"),
                                  key=_unquote(select.group("key")))
            return ParsedStatement(kind="dml", statement=Statement(
                operation=operation, sql=original.strip(), is_last=is_last))

        update = _UPDATE_RE.match(text)
        if update:
            assignments = update.group("assignments")
            value = _unquote(assignments.split("=", 1)[1]) if "=" in assignments else assignments
            operation = Operation(op_type=OpType.UPDATE, table=update.group("table"),
                                  key=_unquote(update.group("key")), value=value)
            return ParsedStatement(kind="dml", statement=Statement(
                operation=operation, sql=original.strip(), is_last=is_last))

        insert = _INSERT_RE.match(text)
        if insert:
            cols = [c.strip() for c in insert.group("cols").split(",")]
            vals = [_unquote(v) for v in insert.group("vals").split(",")]
            if not cols or len(cols) != len(vals):
                raise ParseError(f"column/value arity mismatch in {original!r}")
            key = vals[0]
            value = dict(zip(cols[1:], vals[1:])) if len(vals) > 1 else None
            operation = Operation(op_type=OpType.WRITE, table=insert.group("table"),
                                  key=key, value=value)
            return ParsedStatement(kind="dml", statement=Statement(
                operation=operation, sql=original.strip(), is_last=is_last))

        raise ParseError(f"unsupported SQL: {original!r}")

    def parse_transaction(self, sql_lines: List[str], txn_type: str = "sql") -> TransactionSpec:
        """Parse a BEGIN...COMMIT block into a single-round transaction spec.

        Statements between BEGIN and COMMIT form one round; the last DML
        statement is annotated as the transaction's last statement unless an
        explicit annotation appears earlier.
        """
        statements: List[Statement] = []
        saw_begin = False
        saw_commit = False
        explicit_last = False
        for line in sql_lines:
            if not line.strip():
                continue
            parsed = self.parse_statement(line)
            if parsed.kind == "begin":
                saw_begin = True
            elif parsed.kind == "commit":
                saw_commit = True
                break
            elif parsed.kind == "rollback":
                raise ParseError("cannot build a transaction spec from a ROLLBACK block")
            else:
                statements.append(parsed.statement)
                explicit_last = explicit_last or parsed.statement.is_last
        if not saw_begin or not saw_commit:
            raise ParseError("transaction text must be wrapped in BEGIN ... COMMIT")
        if not statements:
            raise ParseError("transaction contains no DML statements")
        if not explicit_last:
            statements[-1].is_last = True
        return TransactionSpec(rounds=[statements], txn_type=txn_type)
