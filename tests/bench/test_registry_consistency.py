"""Cross-layer consistency: scenarios, ablations and registries must agree.

Two invariants guard the plugin seams:

* every system/workload name referenced anywhere in the scenario registry
  (axis values, base configs, ablation variants) resolves in the plugin
  registry — a scenario can never name a system that does not exist;
* every registered system and workload actually *wires and runs*: a plugin
  that registers but cannot build a cluster (or whose coordinator dies on the
  first transaction) is caught here by a 1-terminal micro-experiment, not by
  a user's overnight sweep.
"""

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.bench.scenarios import ABLATION_BUILDERS, SCENARIOS
from repro.cluster.topology import TopologyConfig
from repro.plugins import (
    normalize_system,
    normalize_workload,
    system_names,
    workload_names,
)
from repro.workloads.ycsb import YCSBConfig


def _scenario_system_references():
    """Every (scenario, system) reference in the scenario registry."""
    for name, scenario in SCENARIOS.items():
        yield f"{name}.base", scenario.base.system
        for axis in scenario.axes:
            if axis.name == "system":
                for value in axis.values:
                    yield f"{name}.axes", value


def test_every_scenario_system_resolves_in_the_registry():
    for where, system in _scenario_system_references():
        assert normalize_system(system) in system_names(), (where, system)


def test_every_scenario_workload_resolves_in_the_registry():
    for name, scenario in SCENARIOS.items():
        assert normalize_workload(scenario.base.workload) in workload_names(), name


def test_every_ablation_variant_maps_to_a_registered_system():
    for variant, (system, factory) in ABLATION_BUILDERS.items():
        assert normalize_system(system) in system_names(), variant
        if factory is not None:
            config = factory()
            assert config is not factory()  # factories build fresh configs


def test_variant_axis_values_resolve_in_ablation_builders():
    for name, scenario in SCENARIOS.items():
        for axis in scenario.axes:
            if axis.name == "variant":
                for value in axis.values:
                    assert value in ABLATION_BUILDERS, (name, value)


# --------------------------------------------------------- micro experiments
def _micro_config(**overrides) -> ExperimentConfig:
    """A 1-terminal experiment small enough to run for every plugin."""
    defaults = dict(
        terminals=1, duration_ms=600.0, warmup_ms=100.0,
        topology=TopologyConfig.from_rtts([5.0, 20.0]),
        ycsb=YCSBConfig(records_per_node=200, preload_rows_per_node=50),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.mark.parametrize("system", system_names())
def test_every_registered_system_builds_and_runs(system):
    """Registering is not enough: the plugin must wire and commit work."""
    result = run_experiment(_micro_config(system=system))
    assert result.system == system
    assert result.committed > 0, f"{system} ran but committed nothing"


@pytest.mark.parametrize("workload", workload_names())
def test_every_registered_workload_builds_and_runs(workload):
    result = run_experiment(_micro_config(system="ssp", workload=workload))
    assert result.workload == workload
    assert result.committed > 0, f"{workload} ran but committed nothing"
