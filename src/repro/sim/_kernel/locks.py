"""Strict two-phase-locking lock manager (kernel module).

This models the record-level locking behaviour of MySQL/InnoDB and PostgreSQL
that GeoTP's scheduling reasons about: shared/exclusive locks, FIFO wait
queues, lock-wait timeouts (``innodb_lock_wait_timeout`` is 5 s in the paper's
setup) and an optional wait-for-graph deadlock detector.

The manager is written against the simulation engine: :meth:`LockManager.acquire`
returns an event that the data-source process yields on; the event fires with
the grant once the lock is available, or fails with :class:`LockTimeoutError`
(or :class:`DeadlockError`) otherwise.

This module is part of the mypyc-compilable kernel (see
:mod:`repro.sim._kernel`): fully annotated, relative imports only.
:class:`LockRequest` and :class:`_LockEntry` are plain slotted classes rather
than dataclasses — identical semantics (requests compare by identity either
way, since each carries a unique :class:`Event`), but a fixed layout mypyc
can compile natively.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Set

from .environment import Environment, WheelTimer
from .events import PENDING, Event


class LockMode(enum.Enum):
    """Lock modes: shared for reads, exclusive for writes."""

    SHARED = "S"
    EXCLUSIVE = "X"


class LockTimeoutError(Exception):
    """A lock request waited longer than the configured lock-wait timeout."""

    def __init__(self, txn_id: str, key: Hashable, waited_ms: float):
        super().__init__(f"txn {txn_id} timed out after {waited_ms:.1f} ms waiting for {key!r}")
        self.txn_id = txn_id
        self.key = key
        self.waited_ms = waited_ms


class DeadlockError(Exception):
    """The deadlock detector chose this transaction as a victim."""

    def __init__(self, txn_id: str, cycle: List[str]):
        super().__init__(f"txn {txn_id} aborted to break deadlock cycle {cycle}")
        self.txn_id = txn_id
        self.cycle = cycle


def _compatible(held: LockMode, requested: LockMode) -> bool:
    """Lock compatibility matrix: only S/S is compatible."""
    return held is LockMode.SHARED and requested is LockMode.SHARED


class LockRequest:
    """A pending or granted request for one record lock."""

    __slots__ = ("txn_id", "key", "mode", "event", "requested_at",
                 "granted_at", "timer")

    def __init__(self, txn_id: str, key: Hashable, mode: LockMode,
                 event: Event, requested_at: float,
                 granted_at: Optional[float] = None,
                 timer: Optional[WheelTimer] = None):
        self.txn_id = txn_id
        self.key = key
        self.mode = mode
        self.event = event
        self.requested_at = requested_at
        self.granted_at = granted_at
        #: Lock-wait timer on the environment's hashed timer wheel, cancelled
        #: when the request is granted.  Wheel timers never occupy a heap
        #: entry, so grant-then-cancel churn is O(1) with no lazy-deletion
        #: debt.
        self.timer = timer

    @property
    def granted(self) -> bool:
        return self.granted_at is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LockRequest(txn_id={self.txn_id!r}, key={self.key!r}, "
                f"mode={self.mode!r}, granted_at={self.granted_at!r})")


class _LockEntry:
    """Per-record lock state: current holders and the FIFO wait queue."""

    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        self.holders: "OrderedDict[str, LockMode]" = OrderedDict()
        self.queue: List[LockRequest] = []


class LockStats:
    """Counters describing lock manager activity."""

    __slots__ = ("acquisitions", "waits", "timeouts", "deadlocks",
                 "total_wait_ms")

    def __init__(self) -> None:
        self.acquisitions: int = 0
        self.waits: int = 0
        self.timeouts: int = 0
        self.deadlocks: int = 0
        self.total_wait_ms: float = 0.0

    @property
    def average_wait_ms(self) -> float:
        granted_after_wait = max(self.waits - self.timeouts - self.deadlocks, 1)
        return self.total_wait_ms / granted_after_wait


class LockManager:
    """Record-level strict 2PL with FIFO waiting and timeout-based abort."""

    __slots__ = ("env", "lock_wait_timeout_ms", "enable_deadlock_detection",
                 "_locks", "_held_by_txn", "_pending_by_txn", "stats")

    def __init__(self, env: Environment, lock_wait_timeout_ms: float = 5000.0,
                 enable_deadlock_detection: bool = False):
        self.env = env
        self.lock_wait_timeout_ms = lock_wait_timeout_ms
        self.enable_deadlock_detection = enable_deadlock_detection
        self._locks: Dict[Hashable, _LockEntry] = {}
        # Keys per transaction in *acquisition order* (an insertion-ordered
        # dict used as a set).  Iteration order feeds lock hand-off on release,
        # so it must not depend on the per-process string hash seed — a plain
        # set here made whole simulations diverge between processes.
        self._held_by_txn: Dict[str, Dict[Hashable, None]] = {}
        # Still-waiting requests per transaction, so release_all can withdraw
        # them in O(pending) instead of scanning every lock entry in the
        # system (which made each commit O(total locks)).
        self._pending_by_txn: Dict[str, List[LockRequest]] = {}
        self.stats = LockStats()

    # -------------------------------------------------------------- inspection
    def holders(self, key: Hashable) -> Dict[str, LockMode]:
        """Current lock holders of ``key`` (may be empty)."""
        entry = self._locks.get(key)
        return dict(entry.holders) if entry else {}

    def queue_length(self, key: Hashable) -> int:
        """Number of requests waiting on ``key``."""
        entry = self._locks.get(key)
        return len(entry.queue) if entry else 0

    def locks_held(self, txn_id: str) -> Set[Hashable]:
        """Keys currently locked by ``txn_id``."""
        return set(self._held_by_txn.get(txn_id, ()))

    def waiting_transactions(self, key: Hashable) -> List[str]:
        """Transaction ids queued on ``key`` in FIFO order."""
        entry = self._locks.get(key)
        return [req.txn_id for req in entry.queue] if entry else []

    # -------------------------------------------------------------- acquisition
    def acquire(self, txn_id: str, key: Hashable, mode: LockMode,
                timeout_ms: Optional[float] = None) -> Event:
        """Request a lock; the returned event fires when granted or fails.

        The event's value is the wait time in milliseconds.  Failure modes are
        :class:`LockTimeoutError` and :class:`DeadlockError`.
        """
        timeout_ms = self.lock_wait_timeout_ms if timeout_ms is None else timeout_ms
        entry = self._locks.get(key)
        if entry is None:
            self._locks[key] = entry = _LockEntry()
        request = LockRequest(txn_id=txn_id, key=key, mode=mode,
                              event=Event(self.env), requested_at=self.env.now)

        if self._can_grant(entry, request):
            self._grant(entry, request)
            return request.event

        # Must wait.
        self.stats.waits += 1
        entry.queue.append(request)

        if self.enable_deadlock_detection:
            victim_cycle = self._find_cycle_from(txn_id)
            if victim_cycle:
                self.stats.deadlocks += 1
                entry.queue.remove(request)
                request.event.defused = True
                request.event.fail(DeadlockError(txn_id, victim_cycle))
                return request.event

        self._pending_by_txn.setdefault(txn_id, []).append(request)

        if timeout_ms != float("inf"):
            # Coarse wheel timer (allocation-free args form, no per-request
            # closure): lock waits may expire up to one wheel tick late,
            # which is noise against the paper's 5 s timeout.
            request.timer = self.env.call_coarse(timeout_ms, self._expire,
                                                 request, entry)
        return request.event

    def _expire(self, req: LockRequest, ent: _LockEntry) -> None:
        """Wheel-timer callback: fail a still-waiting request with a timeout."""
        if req.granted_at is not None or req.event._value is not PENDING:
            return
        if req in ent.queue:
            ent.queue.remove(req)
        self._discard_pending(req)
        self.stats.timeouts += 1
        waited = self.env.now - req.requested_at
        req.event.fail(LockTimeoutError(req.txn_id, req.key, waited))

    def _can_grant(self, entry: _LockEntry, request: LockRequest) -> bool:
        holders = entry.holders
        if not holders:
            return not entry.queue  # respect FIFO: queued requests go first
        if request.txn_id in holders:
            held = holders[request.txn_id]
            if held is LockMode.EXCLUSIVE or request.mode is LockMode.SHARED:
                return True  # re-entrant or downgrade-compatible
            # Upgrade S -> X allowed only if we are the sole holder.
            return len(holders) == 1
        if entry.queue:
            return False  # someone is already waiting; keep FIFO order
        return all(_compatible(held, request.mode) for held in holders.values())

    def _discard_pending(self, request: LockRequest) -> None:
        """Drop ``request`` from the per-txn pending index (if present)."""
        pending = self._pending_by_txn.get(request.txn_id)
        if pending is not None:
            try:
                pending.remove(request)
            except ValueError:
                return
            if not pending:
                del self._pending_by_txn[request.txn_id]

    def _grant(self, entry: _LockEntry, request: LockRequest) -> None:
        previous = entry.holders.get(request.txn_id)
        if previous is LockMode.EXCLUSIVE:
            effective = LockMode.EXCLUSIVE
        else:
            effective = request.mode
        entry.holders[request.txn_id] = effective
        self._held_by_txn.setdefault(request.txn_id, {})[request.key] = None
        request.granted_at = self.env.now
        timer = request.timer
        if timer is not None:
            # Defuse the lock-wait timeout: granted-after-wait requests must
            # not leave stale timers bloating the event heap.
            timer.cancel()
            request.timer = None
        if self._pending_by_txn:
            self._discard_pending(request)
        waited = request.granted_at - request.requested_at
        self.stats.acquisitions += 1
        self.stats.total_wait_ms += waited
        request.event.succeed(waited)

    # ----------------------------------------------------------------- release
    def release_all(self, txn_id: str) -> None:
        """Release every lock held by ``txn_id`` and grant eligible waiters.

        Locks are handed off in acquisition order, which keeps simultaneous
        grant decisions deterministic across processes.  The whole release is
        O(held + pending) — the per-txn pending index replaces the old scan
        over every lock entry in the system, which made each commit O(total
        locks) and whole runs quadratic.
        """
        keys = self._held_by_txn.pop(txn_id, None)
        if keys:
            locks = self._locks
            for key in keys:
                entry = locks.get(key)
                if entry is None:
                    continue
                entry.holders.pop(txn_id, None)
                if entry.queue:
                    self._grant_waiters(entry)
                if not entry.holders and not entry.queue:
                    del locks[key]
        # Also withdraw any still-pending requests of this transaction.  Their
        # lock-wait timers stay armed on purpose: a withdrawn request's wait
        # event still fails with LockTimeoutError when the timer fires, waking
        # whoever blocked on it — exactly as the pre-index implementation did.
        pending = self._pending_by_txn.pop(txn_id, None)
        if pending:
            for request in pending:
                if request.event._value is not PENDING:
                    continue
                entry = self._locks.get(request.key)
                if entry is not None:
                    try:
                        entry.queue.remove(request)
                    except ValueError:
                        pass

    def _grant_waiters(self, entry: _LockEntry) -> None:
        progressed = True
        while progressed and entry.queue:
            progressed = False
            head = entry.queue[0]
            if head.event.triggered:
                entry.queue.pop(0)
                progressed = True
                continue
            grantable = (not entry.holders
                         or head.txn_id in entry.holders
                         or all(_compatible(mode, head.mode)
                                for mode in entry.holders.values()))
            if grantable:
                entry.queue.pop(0)
                self._grant(entry, head)
                progressed = True

    # ------------------------------------------------------- deadlock detection
    def _wait_for_edges(self) -> Dict[str, Dict[str, None]]:
        """Ordered ``waiter -> holders`` edges of the current wait-for graph.

        Holders are listed in lock-grant order (never hash order), so the
        deadlock search below visits them deterministically across processes.
        """
        graph: Dict[str, Dict[str, None]] = {}
        for entry in self._locks.values():
            for request in entry.queue:
                blockers = graph.setdefault(request.txn_id, {})
                for holder in entry.holders:
                    if holder != request.txn_id:
                        blockers[holder] = None
        return {waiter: blockers for waiter, blockers in graph.items() if blockers}

    def wait_for_graph(self) -> Dict[str, Set[str]]:
        """Edges ``waiter -> holder`` of the current wait-for graph."""
        return {waiter: set(blockers)
                for waiter, blockers in self._wait_for_edges().items()}

    def _find_cycle_from(self, start: str) -> Optional[List[str]]:
        graph = self._wait_for_edges()
        path: List[str] = []
        visited: Set[str] = set()

        def visit(node: str) -> Optional[List[str]]:
            if node in path:
                return path[path.index(node):] + [node]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            for neighbour in graph.get(node, ()):
                cycle = visit(neighbour)
                if cycle:
                    return cycle
            path.pop()
            return None

        return visit(start)
