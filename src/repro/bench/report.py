"""Plain-text and markdown reporting: result tables and the registry tables.

Two consumers: the example/benchmark scripts print experiment results through
:func:`format_table`/:func:`print_table`, and ``python -m repro.bench list
--markdown`` emits the scenario/system/workload registry as markdown via
:func:`registry_markdown` — the same text committed in EXPERIMENTS.md and kept
in sync by ``tests/bench/test_docs_sync.py`` plus the CI drift check.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def _format_cell(value) -> str:
    if isinstance(value, float):
        # Magnitude, not signed value: -12345.6 needs the compact one-decimal
        # form just as much as 12345.6 does.
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a titled table to stdout."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def print_series(title: str, series: List[Tuple[float, float]],
                 x_label: str = "x", y_label: str = "y") -> None:
    """Print an (x, y) series as a two-column table."""
    print_table(title, [x_label, y_label], series)


# ------------------------------------------------------------------- markdown
def format_markdown_table(headers: Sequence[str],
                          rows: Iterable[Sequence]) -> str:
    """Render a GitHub-flavoured markdown pipe table."""
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        cells = [str(cell).replace("|", "\\|") for cell in row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def system_capabilities(plugin) -> str:
    """Compact capability-flag summary of one system plugin (``-`` if none)."""
    flags = [flag for flag, enabled in (
        ("agents", plugin.needs_agents),
        ("colocated-ds0", plugin.colocated_with_ds0),
        ("probing", plugin.supports_active_probing),
        (f"ablations[{len(plugin.ablations)}]", bool(plugin.ablations)),
    ) if enabled]
    return ",".join(flags) or "-"


def registry_markdown() -> str:
    """The scenario/system/workload registries as three markdown tables.

    This is the exact text ``python -m repro.bench list --markdown`` prints
    and EXPERIMENTS.md commits between its GENERATED REGISTRY TABLES markers;
    regenerating and diffing the two is how table drift is caught.
    """
    from repro.bench.scenarios import (SCENARIO_FAMILIES, SCENARIOS,
                                       scenario_names)
    from repro.plugins import system_plugins, workload_plugins

    def point_count(scenario) -> int:
        points = 1
        for axis in scenario.axes:
            points *= len(axis.values)
        return points

    # Generated scenario families (hundreds of members) collapse into one
    # summary row each; only family-less scenarios get individual lines.
    scenario_rows = []
    family_totals: dict = {}
    for name in scenario_names():
        scenario = SCENARIOS[name]
        if scenario.family is not None:
            members, points = family_totals.get(scenario.family, (0, 0))
            family_totals[scenario.family] = (members + 1,
                                              points + point_count(scenario))
            continue
        axes = " × ".join(f"{axis.name}[{len(axis.values)}]"
                          for axis in scenario.axes)
        scenario_rows.append((f"`{name}`", axes, point_count(scenario),
                              scenario.description))

    family_rows = [(f"`{family}_*`", members, points,
                    SCENARIO_FAMILIES.get(family, ""))
                   for family, (members, points)
                   in sorted(family_totals.items())]

    system_rows = [(f"`{plugin.name}`", ", ".join(plugin.aliases) or "-",
                    system_capabilities(plugin), plugin.description)
                   for plugin in system_plugins()]
    workload_rows = [(f"`{plugin.name}`", ", ".join(plugin.aliases) or "-",
                      plugin.description)
                     for plugin in workload_plugins()]

    sections = [
        "#### Scenarios\n\n" + format_markdown_table(
            ("scenario", "axes", "points", "description"), scenario_rows),
        "#### Systems\n\n" + format_markdown_table(
            ("system", "aliases", "capabilities", "description"), system_rows),
        "#### Workloads\n\n" + format_markdown_table(
            ("workload", "aliases", "description"), workload_rows),
    ]
    if family_rows:
        sections.insert(1, "#### Generated scenario families\n\n"
                        + format_markdown_table(
                            ("family", "scenarios", "points", "description"),
                            family_rows))
    return "\n\n".join(sections) + "\n"


#: Markers delimiting the committed registry block in EXPERIMENTS.md.
REGISTRY_BLOCK_BEGIN = ("<!-- BEGIN GENERATED REGISTRY TABLES "
                        "(python -m repro.bench list --markdown) -->")
REGISTRY_BLOCK_END = "<!-- END GENERATED REGISTRY TABLES -->"


def extract_registry_block(text: str) -> str:
    """The committed registry tables between the EXPERIMENTS.md markers."""
    try:
        start = text.index(REGISTRY_BLOCK_BEGIN) + len(REGISTRY_BLOCK_BEGIN)
        end = text.index(REGISTRY_BLOCK_END)
    except ValueError:
        raise ValueError("registry-table markers not found") from None
    return text[start:end].strip("\n") + "\n"


def update_registry_block(path: str) -> bool:
    """Rewrite the registry block of ``path`` in place; True if it changed.

    The refresh command after registering a new scenario/system/workload::

        PYTHONPATH=src python -c "from repro.bench.report import \\
            update_registry_block; update_registry_block('EXPERIMENTS.md')"
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    current = extract_registry_block(text)
    fresh = registry_markdown()
    if current == fresh:
        return False
    begin = text.index(REGISTRY_BLOCK_BEGIN) + len(REGISTRY_BLOCK_BEGIN)
    end = text.index(REGISTRY_BLOCK_END)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text[:begin] + "\n" + fresh + text[end:])
    return True
