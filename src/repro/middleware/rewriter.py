"""Rewriting client statements into per-data-source subtransaction plans.

The rewriter groups the statements of one interaction round by target data
source (as decided by the :class:`~repro.middleware.router.Partitioner`) and
renders engine-specific SQL for each group: reads are rewritten to
``SELECT ... FOR SHARE`` for dialects that need it (PostgreSQL, §VII-A), and
the XA framing statements are produced from the dialect profiles — this is the
``T1 -> T11 / T12`` translation of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import Operation, OpType
from repro.middleware.router import Partitioner
from repro.middleware.statements import Statement
from repro.storage.dialects import Dialect


@dataclass(slots=True)
class SubtransactionPlan:
    """The statements of one round destined for one data source."""

    datasource: str
    statements: List[Statement] = field(default_factory=list)
    #: True if this batch contains a statement annotated as the transaction's last.
    contains_last: bool = False

    @property
    def operations(self) -> List[Operation]:
        """The operations to execute, in order."""
        return [stmt.operation for stmt in self.statements]

    def rendered_sql(self, dialect: Optional[Dialect] = None) -> List[str]:
        """Engine-specific SQL text for this batch (reads rewritten if needed)."""
        lines = []
        for stmt in self.statements:
            sql = stmt.rendered_sql()
            if dialect is not None and stmt.operation.op_type is OpType.READ:
                sql = dialect.rewrite_read(sql)
            lines.append(sql)
        return lines


class Rewriter:
    """Groups round statements by data source and renders dialect SQL."""

    def __init__(self, partitioner: Partitioner):
        self.partitioner = partitioner

    def plan_round(self, statements: List[Statement]) -> Dict[str, SubtransactionPlan]:
        """Split one round into per-data-source subtransaction plans."""
        plans: Dict[str, SubtransactionPlan] = {}
        for stmt in statements:
            operation = stmt.operation
            target = self.partitioner.locate(operation.table, operation.key)
            plan = plans.get(target)
            if plan is None:
                plan = plans[target] = SubtransactionPlan(datasource=target)
            plan.statements.append(stmt)
            if stmt.is_last:
                plan.contains_last = True
        return plans

    def participants(self, statements: List[Statement]) -> List[str]:
        """The distinct data sources a list of statements touches, in first-use order."""
        seen: List[str] = []
        for stmt in statements:
            target = self.partitioner.locate(stmt.operation.table, stmt.operation.key)
            if target not in seen:
                seen.append(target)
        return seen

    def render_subtransaction(self, xid: str, plan: SubtransactionPlan,
                              dialect: Dialect) -> List[str]:
        """Full SQL script for one subtransaction (begin + DML + end/prepare).

        This mirrors the rewrite shown in Figure 3 of the paper; it is used for
        logging/inspection and by the parser round-trip tests — the simulated
        data sources consume structured operations rather than SQL text.
        """
        script = list(dialect.begin_statements(xid))
        script.extend(plan.rendered_sql(dialect))
        script.extend(dialect.end_prepare_statements(xid))
        return script
