"""The TPC-C workload (§VII-A2).

Nine relations partitioned by warehouse across the data nodes (the read-only
``item`` table is replicated).  The standard five transaction types are
generated with the standard mix; following the paper we exclude client think
time and the 1 % of NewOrder transactions that abort on purpose due to invalid
item ids.  The ratio of distributed transactions is controlled by choosing the
remote warehouse of Payment and NewOrder transactions on a *different data
node* with the configured probability (§VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common import Operation, OpType
from repro.middleware.router import WarehousePartitioner
from repro.middleware.statements import TransactionSpec
from repro.plugins import WorkloadPlugin, register_workload
from repro.workloads.base import Workload, WorkloadConfig

#: Standard TPC-C transaction mix.
DEFAULT_MIX = {
    "new_order": 0.45,
    "payment": 0.43,
    "order_status": 0.04,
    "delivery": 0.04,
    "stock_level": 0.04,
}

DISTRICTS_PER_WAREHOUSE = 10


@dataclass
class TPCCConfig(WorkloadConfig):
    """Configuration of the TPC-C generator (sizes scaled for simulation)."""

    warehouses_per_node: int = 4
    customers_per_district: int = 30
    #: Number of items in the (replicated) item catalogue.
    item_count: int = 200
    #: Items ordered by a NewOrder transaction: uniform in [min, max].
    min_order_lines: int = 5
    max_order_lines: int = 15
    #: Transaction mix; must sum to 1.  Use e.g. ``{"payment": 1.0}`` to run a
    #: single transaction type as in Figure 9.
    mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    #: Districts processed by one Delivery transaction (10 in the spec).
    delivery_districts: int = 10


class TPCCWorkload(Workload):
    """Generator of TPC-C transaction specs."""

    name = "tpcc"

    def __init__(self, datasource_names: Sequence[str], config: TPCCConfig):
        super().__init__(datasource_names, config)
        self.config: TPCCConfig = config
        if config.warehouses_per_node < 1:
            raise ValueError("warehouses_per_node must be >= 1")
        total = sum(config.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"transaction mix must sum to 1 (got {total})")
        unknown = set(config.mix) - set(DEFAULT_MIX)
        if unknown:
            raise ValueError(f"unknown transaction types in mix: {sorted(unknown)}")
        self._partitioner = WarehousePartitioner(
            self.datasource_names, warehouses_per_node=config.warehouses_per_node)
        self._order_counter = 3000  # order ids continue after the loaded history

    # --------------------------------------------------------------- interface
    def make_partitioner(self) -> WarehousePartitioner:
        return self._partitioner

    @property
    def total_warehouses(self) -> int:
        """Warehouses across the whole cluster."""
        return self._partitioner.total_warehouses

    def initial_data(self) -> Dict[str, Dict[str, Dict]]:
        data: Dict[str, Dict[str, Dict]] = {}
        for node_index, name in enumerate(self.datasource_names):
            tables: Dict[str, Dict] = {
                "warehouse": {}, "district": {}, "customer": {}, "stock": {},
                "item": {}, "order": {}, "neworder": {}, "orderline": {}, "history": {},
            }
            for warehouse_id in self._partitioner.warehouses_on_node(node_index):
                tables["warehouse"][(warehouse_id,)] = {"w_ytd": 0.0, "w_tax": 0.05}
                for district_id in range(1, DISTRICTS_PER_WAREHOUSE + 1):
                    tables["district"][(warehouse_id, district_id)] = {
                        "d_ytd": 0.0, "d_tax": 0.05, "d_next_o_id": 3000}
                    for customer_id in range(1, self.config.customers_per_district + 1):
                        tables["customer"][(warehouse_id, district_id, customer_id)] = {
                            "c_balance": -10.0, "c_ytd_payment": 10.0, "c_payment_cnt": 1}
                for item_id in range(1, self.config.item_count + 1):
                    tables["stock"][(warehouse_id, item_id)] = {
                        "s_quantity": 100, "s_ytd": 0, "s_order_cnt": 0}
            # The item catalogue is replicated on every node.
            for item_id in range(1, self.config.item_count + 1):
                tables["item"][item_id] = {"i_price": 9.99, "i_name": f"item-{item_id}"}
            data[name] = tables
        return data

    def next_transaction(self, terminal_id: int = 0) -> TransactionSpec:
        txn_type = self._draw_transaction_type()
        home_warehouse = self._draw_home_warehouse(terminal_id)
        builder = {
            "new_order": self._new_order,
            "payment": self._payment,
            "order_status": self._order_status,
            "delivery": self._delivery,
            "stock_level": self._stock_level,
        }[txn_type]
        operations, is_distributed = builder(home_warehouse)
        return TransactionSpec.from_operations(
            operations, txn_type=txn_type, rounds=self.config.rounds,
            metadata={"warehouse": home_warehouse, "distributed": is_distributed})

    # ------------------------------------------------------------ txn builders
    def _draw_transaction_type(self) -> str:
        draw = self.rng.random()
        cumulative = 0.0
        for txn_type, weight in self.config.mix.items():
            cumulative += weight
            if draw < cumulative:
                return txn_type
        return next(iter(self.config.mix))

    def _draw_home_warehouse(self, terminal_id: int) -> int:
        return self.rng.randint(1, self.total_warehouses)

    def _draw_remote_warehouse(self, home_warehouse: int, force_remote_node: bool) -> int:
        """A warehouse other than ``home``; on another data node if requested."""
        home_node = self._partitioner.node_for_warehouse(home_warehouse)
        candidates = [w for w in range(1, self.total_warehouses + 1) if w != home_warehouse]
        if force_remote_node:
            remote = [w for w in candidates
                      if self._partitioner.node_for_warehouse(w) != home_node]
            if remote:
                candidates = remote
        return self.rng.choice(candidates) if candidates else home_warehouse

    def _district(self) -> int:
        return self.rng.randint(1, DISTRICTS_PER_WAREHOUSE)

    def _customer(self) -> int:
        return self.rng.randint(1, self.config.customers_per_district)

    def _item(self) -> int:
        return self.rng.randint(1, self.config.item_count)

    def _next_order_id(self) -> int:
        self._order_counter += 1
        return self._order_counter

    def _is_distributed(self, warehouses: List[int]) -> bool:
        nodes = {self._partitioner.node_for_warehouse(w) for w in warehouses}
        return len(nodes) > 1

    def _new_order(self, warehouse_id: int):
        district_id = self._district()
        customer_id = self._customer()
        order_id = self._next_order_id()
        want_distributed = self.rng.bernoulli(self.config.distributed_ratio)

        operations = [
            Operation(OpType.READ, "warehouse", (warehouse_id,)),
            Operation(OpType.UPDATE, "district", (warehouse_id, district_id),
                      value={"d_next_o_id": order_id + 1}),
            Operation(OpType.READ, "customer", (warehouse_id, district_id, customer_id)),
            Operation(OpType.WRITE, "order", (warehouse_id, district_id, order_id),
                      value={"o_c_id": customer_id, "o_ol_cnt": 0}),
            Operation(OpType.WRITE, "neworder", (warehouse_id, district_id, order_id),
                      value={}),
        ]
        line_count = self.rng.randint(self.config.min_order_lines,
                                      self.config.max_order_lines)
        warehouses_touched = [warehouse_id]
        for line_number in range(1, line_count + 1):
            item_id = self._item()
            supply_warehouse = warehouse_id
            if want_distributed and line_number == 1:
                supply_warehouse = self._draw_remote_warehouse(
                    warehouse_id, force_remote_node=True)
            elif self.rng.bernoulli(0.01):
                supply_warehouse = self._draw_remote_warehouse(
                    warehouse_id, force_remote_node=False)
            warehouses_touched.append(supply_warehouse)
            operations.append(Operation(OpType.READ, "item", item_id))
            operations.append(Operation(OpType.UPDATE, "stock",
                                        (supply_warehouse, item_id),
                                        value={"s_quantity": 91}))
            operations.append(Operation(
                OpType.WRITE, "orderline",
                (warehouse_id, district_id, order_id, line_number),
                value={"ol_i_id": item_id, "ol_supply_w_id": supply_warehouse}))
        return operations, self._is_distributed(warehouses_touched)

    def _payment(self, warehouse_id: int):
        district_id = self._district()
        customer_id = self._customer()
        amount = round(self.rng.uniform(1.0, 5000.0), 2)
        want_distributed = self.rng.bernoulli(self.config.distributed_ratio)
        customer_warehouse = warehouse_id
        if want_distributed:
            customer_warehouse = self._draw_remote_warehouse(
                warehouse_id, force_remote_node=True)

        operations = [
            Operation(OpType.UPDATE, "warehouse", (warehouse_id,),
                      value={"w_ytd_delta": amount}),
            Operation(OpType.UPDATE, "district", (warehouse_id, district_id),
                      value={"d_ytd_delta": amount}),
            Operation(OpType.UPDATE, "customer",
                      (customer_warehouse, district_id, customer_id),
                      value={"c_balance_delta": -amount}),
            Operation(OpType.WRITE, "history",
                      (warehouse_id, district_id, customer_id, self._next_order_id()),
                      value={"h_amount": amount}),
        ]
        return operations, self._is_distributed([warehouse_id, customer_warehouse])

    def _order_status(self, warehouse_id: int):
        district_id = self._district()
        customer_id = self._customer()
        order_id = self.rng.randint(2990, 3000)
        operations = [
            Operation(OpType.READ, "customer", (warehouse_id, district_id, customer_id)),
            Operation(OpType.READ, "order", (warehouse_id, district_id, order_id)),
            Operation(OpType.READ, "orderline", (warehouse_id, district_id, order_id, 1)),
        ]
        return operations, False

    def _delivery(self, warehouse_id: int):
        operations: List[Operation] = []
        for district_id in range(1, self.config.delivery_districts + 1):
            order_id = self.rng.randint(2990, 3000)
            operations.append(Operation(OpType.UPDATE, "neworder",
                                        (warehouse_id, district_id, order_id),
                                        value={"delivered": True}))
            operations.append(Operation(OpType.UPDATE, "order",
                                        (warehouse_id, district_id, order_id),
                                        value={"o_carrier_id": 7}))
            operations.append(Operation(OpType.UPDATE, "customer",
                                        (warehouse_id, district_id, self._customer()),
                                        value={"c_balance_delta": 25.0}))
        return operations, False

    def _stock_level(self, warehouse_id: int):
        district_id = self._district()
        operations = [Operation(OpType.READ, "district", (warehouse_id, district_id))]
        for _ in range(5):
            operations.append(Operation(OpType.READ, "stock",
                                        (warehouse_id, self._item())))
        return operations, False


# ------------------------------------------------------------------- plugin
register_workload(WorkloadPlugin(
    name="tpcc",
    description="TPC-C order processing partitioned by warehouse (\u00a7VII-A2)",
    aliases=("tpc_c",),
    factory=TPCCWorkload,
    config_factory=TPCCConfig,
    config_field="tpcc",
))
