"""Unit tests for Resource and Store primitives."""

import pytest

from repro.sim import Environment, Resource, Store


def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(name):
        req = res.request()
        yield req
        granted.append((env.now, name))
        yield env.timeout(10)
        res.release(req)

    env.process(user("a"))
    env.process(user("b"))
    env.process(user("c"))
    env.run()
    # a and b start at 0, c must wait for a release at t=10.
    assert granted == [(0, "a"), (0, "b"), (10, "c")]


def test_resource_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(name):
        with res.request() as req:
            yield req
            order.append((env.now, name))
            yield env.timeout(5)

    env.process(user("first"))
    env.process(user("second"))
    env.run()
    assert order == [(0, "first"), (5, "second")]
    assert res.count == 0


def test_resource_queue_length_counts_waiters():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield env.timeout(100)
        res.release(req)

    def waiter():
        req = res.request()
        yield req
        res.release(req)

    env.process(holder())
    env.process(waiter())
    env.process(waiter())
    env.run(until=1)
    assert res.queue_length == 2
    env.run()
    assert res.queue_length == 0


def test_resource_cancel_withdraws_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    assert res.queue_length == 1
    second.cancel()
    assert res.queue_length == 0
    res.release(first)
    assert not second.triggered


def test_store_put_then_get_returns_fifo_order():
    env = Environment()
    store = Store(env)
    store.put("x")
    store.put("y")
    received = []

    def consumer():
        for _ in range(2):
            item = yield store.get()
            received.append(item)

    env.process(consumer())
    env.run()
    assert received == ["x", "y"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    received = []

    def consumer():
        item = yield store.get()
        received.append((env.now, item))

    def producer():
        yield env.timeout(40)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert received == [(40, "late")]


def test_store_multiple_getters_served_in_order():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(name):
        item = yield store.get()
        received.append((name, item))

    env.process(consumer("g1"))
    env.process(consumer("g2"))

    def producer():
        yield env.timeout(1)
        store.put("first")
        store.put("second")

    env.process(producer())
    env.run()
    assert received == [("g1", "first"), ("g2", "second")]


def test_store_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put(7)
    assert store.try_get() == 7
    assert len(store) == 0


def test_store_len_and_items_snapshot():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == [1, 2]
