"""One function per paper table/figure.

Every function returns a plain dict of the rows/series the paper plots and, via
``report=True``, prints them as text tables.  Benchmarks call these functions
with reduced scale (shorter runs, fewer terminals) so the whole suite finishes
in minutes; EXPERIMENTS.md records a full-scale run.

The experiment ids match DESIGN.md: fig1b, fig5, fig6, fig7, fig8, fig9, fig10,
fig11a, fig11b, fig12, fig13, fig14, fig15 and table1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.report import print_table
from repro.bench.runner import ExperimentConfig, ExperimentResult, run_experiment
from repro.cluster.topology import TopologyConfig
from repro.core.config import GeoTPConfig
from repro.sim.latency import DynamicLatency, JitterLatency, RandomLatency
from repro.sim.rng import SeededRNG
from repro.workloads.tpcc import TPCCConfig
from repro.workloads.ycsb import CONTENTION_SKEW, YCSBConfig

#: Default scale used by the pytest benchmarks; EXPERIMENTS.md uses larger values.
QUICK_DURATION_MS = 10_000.0
QUICK_WARMUP_MS = 2_000.0
QUICK_TERMINALS = 48


def _ycsb(skew: float = CONTENTION_SKEW["medium"], distributed_ratio: float = 0.2,
          **kwargs) -> YCSBConfig:
    return YCSBConfig(skew=skew, distributed_ratio=distributed_ratio, **kwargs)


def _run(system: str, *, workload: str = "ycsb", ycsb: Optional[YCSBConfig] = None,
         tpcc: Optional[TPCCConfig] = None, topology: Optional[TopologyConfig] = None,
         terminals: int = QUICK_TERMINALS, duration_ms: float = QUICK_DURATION_MS,
         warmup_ms: float = QUICK_WARMUP_MS, geotp: Optional[GeoTPConfig] = None,
         timeline_bucket_ms: Optional[float] = None, active_probing: bool = False,
         seed: int = 0) -> ExperimentResult:
    config = ExperimentConfig(
        system=system, workload=workload, topology=topology, terminals=terminals,
        duration_ms=duration_ms, warmup_ms=warmup_ms,
        ycsb=ycsb or _ycsb(), tpcc=tpcc or TPCCConfig(), geotp=geotp,
        timeline_bucket_ms=timeline_bucket_ms, active_probing=active_probing,
        seed=seed)
    return run_experiment(config)


# --------------------------------------------------------------------- Fig. 1b
def fig1_motivation(ds2_latencies_ms: Sequence[float] = (20, 40, 60, 80, 100),
                    duration_ms: float = QUICK_DURATION_MS,
                    terminals: int = 8, report: bool = False) -> Dict:
    """Average latency of *centralized* transactions vs. the DM-DS2 latency.

    Reproduces the motivating experiment: two data sources (DS1 at 10 ms),
    80 % centralized transactions on DS1, 20 % distributed, under low and
    medium contention.
    """
    rows = []
    series: Dict[str, List] = {"LC": [], "MC": []}
    for label, skew in (("LC", CONTENTION_SKEW["low"]), ("MC", CONTENTION_SKEW["medium"])):
        for ds2_latency in ds2_latencies_ms:
            topology = TopologyConfig.from_rtts([10.0, float(ds2_latency)])
            # All transactions are homed on DS1: 80% touch only DS1, 20% also
            # touch DS2, exactly as in the paper's motivating experiment.
            ycsb = _ycsb(skew=skew, distributed_ratio=0.2, home_node=0,
                         records_per_node=5_000)
            result = _run("ssp", ycsb=ycsb,
                          topology=topology, terminals=terminals,
                          duration_ms=duration_ms)
            centralized = result.latency_for(distributed=False)
            latency = centralized.mean if len(centralized) else 0.0
            series[label].append((ds2_latency, latency))
            rows.append((label, ds2_latency, round(latency, 1)))
    if report:
        print_table("Fig 1b — centralized txn latency vs DM-DS2 latency (SSP)",
                    ["contention", "ds2 RTT (ms)", "avg centralized latency (ms)"], rows)
    return {"series": series, "rows": rows}


# --------------------------------------------------------------------- Fig. 5
OVERALL_SYSTEMS = ("ssp", "ssp_local", "scalardb", "scalardb_plus", "geotp")


def fig5_overall(workload: str = "ycsb",
                 terminal_counts: Sequence[int] = (16, 48, 96),
                 systems: Sequence[str] = OVERALL_SYSTEMS,
                 duration_ms: float = QUICK_DURATION_MS,
                 report: bool = False) -> Dict:
    """Throughput vs. number of client terminals for the five systems (Fig. 5a/5b)."""
    series: Dict[str, List] = {system: [] for system in systems}
    for system in systems:
        for terminals in terminal_counts:
            result = _run(system, workload=workload, terminals=terminals,
                          duration_ms=duration_ms)
            series[system].append((terminals, round(result.throughput_tps, 1)))
    if report:
        rows = [(system, *[tps for _t, tps in points])
                for system, points in series.items()]
        print_table(f"Fig 5 — throughput vs terminals ({workload})",
                    ["system"] + [f"{t} terms" for t in terminal_counts], rows)
    return {"series": series, "terminal_counts": list(terminal_counts)}


# --------------------------------------------------------------------- Fig. 6
def fig6_resources_breakdown(duration_ms: float = QUICK_DURATION_MS,
                             terminals: int = QUICK_TERMINALS,
                             report: bool = False) -> Dict:
    """Resource proxies and per-phase latency breakdown, SSP vs GeoTP (Fig. 6)."""
    out = {}
    for system in ("ssp", "geotp"):
        result = _run(system, duration_ms=duration_ms, terminals=terminals)
        out[system] = {
            "throughput_tps": result.throughput_tps,
            "avg_latency_ms": result.average_latency_ms,
            "work_per_commit": result.resources.work_per_commit,
            "wan_messages_per_commit": result.resources.wan_messages_per_commit,
            "metadata_bytes": result.resources.metadata_bytes,
            "breakdown": result.breakdown,
        }
    if report:
        rows = [(system,
                 round(data["throughput_tps"], 1),
                 round(data["avg_latency_ms"], 1),
                 round(data["work_per_commit"], 2),
                 round(data["wan_messages_per_commit"], 2),
                 data["metadata_bytes"])
                for system, data in out.items()]
        print_table("Fig 6a/6b — resource proxies",
                    ["system", "tput", "avg lat", "work/commit", "wan msgs/commit",
                     "metadata bytes"], rows)
        for system, data in out.items():
            phase_rows = [(phase, round(ms, 2)) for phase, ms in data["breakdown"].items()]
            print_table(f"Fig 6c — phase breakdown ({system})", ["phase", "ms"], phase_rows)
    return out


# --------------------------------------------------------------------- Fig. 7
DIST_RATIO_SYSTEMS = ("ssp", "quro", "chiller", "geotp")


def fig7_distributed_ratio_ycsb(ratios: Sequence[float] = (0.2, 0.6, 1.0),
                                contentions: Sequence[str] = ("low", "medium", "high"),
                                systems: Sequence[str] = DIST_RATIO_SYSTEMS,
                                duration_ms: float = QUICK_DURATION_MS,
                                terminals: int = QUICK_TERMINALS,
                                report: bool = False) -> Dict:
    """Throughput and average latency vs. distributed-transaction ratio (Fig. 7)."""
    out: Dict[str, Dict[str, List]] = {c: {s: [] for s in systems} for c in contentions}
    for contention in contentions:
        skew = CONTENTION_SKEW[contention]
        for system in systems:
            for ratio in ratios:
                result = _run(system, ycsb=_ycsb(skew=skew, distributed_ratio=ratio),
                              duration_ms=duration_ms, terminals=terminals)
                out[contention][system].append(
                    (ratio, round(result.throughput_tps, 1),
                     round(result.average_latency_ms, 1)))
    if report:
        for contention in contentions:
            rows = []
            for system in systems:
                for ratio, tput, latency in out[contention][system]:
                    rows.append((system, ratio, tput, latency))
            print_table(f"Fig 7 — YCSB {contention} contention",
                        ["system", "dist ratio", "tput (tps)", "avg latency (ms)"], rows)
    return out


# --------------------------------------------------------------------- Fig. 8
def fig8_latency_cdf(contentions: Sequence[str] = ("low", "medium", "high"),
                     systems: Sequence[str] = ("ssp", "ssp_local", "geotp"),
                     distributed_ratio: float = 0.6,
                     duration_ms: float = QUICK_DURATION_MS,
                     terminals: int = QUICK_TERMINALS,
                     cdf_points: int = 20, report: bool = False) -> Dict:
    """Latency CDFs with 60 % distributed transactions (Fig. 8)."""
    out: Dict[str, Dict[str, object]] = {}
    for contention in contentions:
        skew = CONTENTION_SKEW[contention]
        out[contention] = {}
        for system in systems:
            result = _run(system, ycsb=_ycsb(skew=skew, distributed_ratio=distributed_ratio),
                          duration_ms=duration_ms, terminals=terminals)
            distribution = result.latency
            out[contention][system] = {
                "cdf": distribution.cdf(points=cdf_points),
                "p99": distribution.p99 if len(distribution) else 0.0,
                "mean": distribution.mean,
            }
    if report:
        for contention in contentions:
            rows = [(system, round(data["mean"], 1), round(data["p99"], 1))
                    for system, data in out[contention].items()]
            print_table(f"Fig 8 — latency ({contention} contention, 60% distributed)",
                        ["system", "mean (ms)", "p99 (ms)"], rows)
    return out


# --------------------------------------------------------------------- Fig. 9
def fig9_distributed_ratio_tpcc(ratios: Sequence[float] = (0.2, 0.6, 1.0),
                                txn_types: Sequence[str] = ("payment", "new_order"),
                                systems: Sequence[str] = DIST_RATIO_SYSTEMS,
                                duration_ms: float = QUICK_DURATION_MS,
                                terminals: int = QUICK_TERMINALS,
                                report: bool = False) -> Dict:
    """TPC-C Payment / NewOrder throughput and latency vs. distributed ratio (Fig. 9)."""
    out: Dict[str, Dict[str, List]] = {t: {s: [] for s in systems} for t in txn_types}
    for txn_type in txn_types:
        for system in systems:
            for ratio in ratios:
                tpcc = TPCCConfig(mix={txn_type: 1.0}, distributed_ratio=ratio,
                                  warehouses_per_node=4)
                result = _run(system, workload="tpcc", tpcc=tpcc,
                              duration_ms=duration_ms, terminals=terminals)
                out[txn_type][system].append(
                    (ratio, round(result.throughput_tps, 1),
                     round(result.average_latency_ms, 1)))
    if report:
        for txn_type in txn_types:
            rows = []
            for system in systems:
                for ratio, tput, latency in out[txn_type][system]:
                    rows.append((system, ratio, tput, latency))
            print_table(f"Fig 9 — TPC-C {txn_type}",
                        ["system", "dist ratio", "tput (tps)", "avg latency (ms)"], rows)
    return out


# -------------------------------------------------------------------- Fig. 10
def fig10_latency_sweep(means_ms: Sequence[float] = (20, 40, 60, 80),
                        stds_ms: Sequence[float] = (0, 20, 40),
                        duration_ms: float = QUICK_DURATION_MS,
                        terminals: int = QUICK_TERMINALS,
                        report: bool = False) -> Dict:
    """Impact of the mean and standard deviation of network latency (Fig. 10).

    Fixed-std sweep: three data nodes at mean-10/mean/mean+10 ms.
    Fixed-mean sweep: three nodes whose RTTs are jittered with increasing std.
    """
    mean_series = []
    for mean in means_ms:
        rtts = [max(mean - 10, 1.0), float(mean), mean + 10.0]
        topology = TopologyConfig.from_rtts(rtts)
        ssp = _run("ssp", topology=topology, duration_ms=duration_ms, terminals=terminals)
        geotp = _run("geotp", topology=topology, duration_ms=duration_ms,
                     terminals=terminals)
        improvement = (geotp.throughput_tps / ssp.throughput_tps
                       if ssp.throughput_tps else float("inf"))
        mean_series.append((mean, round(ssp.throughput_tps, 1),
                            round(geotp.throughput_tps, 1), round(improvement, 2)))

    std_series = []
    for std in stds_ms:
        # The paper's Figure 10b varies how *spread out* the per-link RTTs are
        # while keeping their mean fixed: links at mean-std / mean / mean+std.
        rtts = [max(40.0 - std, 1.0), 40.0, 40.0 + std]
        topology = TopologyConfig.from_rtts(rtts)
        ssp = _run("ssp", topology=topology, duration_ms=duration_ms, terminals=terminals)
        geotp = _run("geotp", topology=topology, duration_ms=duration_ms,
                     terminals=terminals)
        improvement = (geotp.throughput_tps / ssp.throughput_tps
                       if ssp.throughput_tps else float("inf"))
        std_series.append((std, round(ssp.throughput_tps, 1),
                           round(geotp.throughput_tps, 1), round(improvement, 2)))

    if report:
        print_table("Fig 10a — varying mean RTT (fixed spread)",
                    ["mean RTT (ms)", "SSP tput", "GeoTP tput", "improvement (x)"],
                    mean_series)
        print_table("Fig 10b — varying RTT std (fixed mean 40 ms)",
                    ["std (ms)", "SSP tput", "GeoTP tput", "improvement (x)"],
                    std_series)
    return {"mean_sweep": mean_series, "std_sweep": std_series}


# -------------------------------------------------------------------- Fig. 11
def fig11_random_latency(ratios: Sequence[float] = (0.2, 0.6, 1.0),
                         repeats: int = 3, max_factor: float = 1.5,
                         duration_ms: float = QUICK_DURATION_MS,
                         terminals: int = QUICK_TERMINALS,
                         report: bool = False) -> Dict:
    """Random per-message latency fluctuations (Fig. 11a)."""
    out: Dict[str, List] = {"ssp": [], "geotp": []}
    for system in ("ssp", "geotp"):
        for ratio in ratios:
            samples = []
            for repeat in range(repeats):
                models = [RandomLatency(base, max_factor=max_factor,
                                        rng=SeededRNG(100 + repeat * 10 + i))
                          for i, base in enumerate((10.0, 27.0, 73.0, 151.0))]
                topology = TopologyConfig.from_latency_models(models)
                result = _run(system, ycsb=_ycsb(distributed_ratio=ratio),
                              topology=topology, duration_ms=duration_ms,
                              terminals=terminals, seed=repeat)
                samples.append(result.throughput_tps)
            out[system].append((ratio, round(sum(samples) / len(samples), 1),
                                round(min(samples), 1), round(max(samples), 1)))
    if report:
        rows = [(system, ratio, mean, low, high)
                for system, points in out.items()
                for ratio, mean, low, high in points]
        print_table("Fig 11a — random latency",
                    ["system", "dist ratio", "mean tput", "min", "max"], rows)
    return out


def fig11_dynamic_latency(phase_ms: float = 10_000.0, phases: int = 4,
                          terminals: int = QUICK_TERMINALS,
                          report: bool = False) -> Dict:
    """Online adaptivity: link latencies change every ``phase_ms`` (Fig. 11b)."""
    rng = SeededRNG(42)
    schedules = []
    for node in range(4):
        schedule = []
        for phase in range(phases):
            schedule.append((phase * phase_ms, rng.uniform(10.0, 200.0)))
        schedules.append(DynamicLatency(schedule))
    duration = phase_ms * phases
    out = {}
    for system in ("ssp", "geotp"):
        topology = TopologyConfig.from_latency_models(schedules)
        result = _run(system, topology=topology, duration_ms=duration,
                      warmup_ms=phase_ms / 4, terminals=terminals,
                      timeline_bucket_ms=phase_ms / 4, active_probing=system == "geotp")
        out[system] = {
            "throughput_tps": result.throughput_tps,
            "timeline": result.timeline.series(until_ms=duration) if result.timeline else [],
        }
    if report:
        rows = [(system, round(data["throughput_tps"], 1)) for system, data in out.items()]
        print_table("Fig 11b — dynamic latency (overall throughput)",
                    ["system", "tput (tps)"], rows)
    return out


# -------------------------------------------------------------------- Fig. 12
ABLATION_VARIANTS = ("ssp", "geotp_o1", "geotp_o1_o2", "geotp_o1_o3")


def fig12_ablation(skews: Sequence[float] = (0.3, 0.9, 1.5),
                   distributed_ratio: float = 0.5,
                   duration_ms: float = QUICK_DURATION_MS,
                   terminals: int = QUICK_TERMINALS,
                   report: bool = False) -> Dict:
    """The O1 / O1-O2 / O1-O3 ablation across skew factors (Fig. 12)."""
    base = GeoTPConfig()
    variants = {
        "ssp": ("ssp", None),
        "geotp_o1": ("geotp", base.ablation_o1()),
        "geotp_o1_o2": ("geotp", base.ablation_o1_o2()),
        "geotp_o1_o3": ("geotp", base.ablation_o1_o3()),
    }
    out: Dict[str, List] = {name: [] for name in variants}
    for skew in skews:
        for name, (system, geotp_config) in variants.items():
            result = _run(system, ycsb=_ycsb(skew=skew, distributed_ratio=distributed_ratio),
                          geotp=geotp_config, duration_ms=duration_ms,
                          terminals=terminals)
            out[name].append((skew, round(result.throughput_tps, 1),
                              round(result.p99_latency_ms, 1),
                              round(result.abort_rate * 100, 1)))
    if report:
        rows = [(name, skew, tput, p99, abort)
                for name, points in out.items()
                for skew, tput, p99, abort in points]
        print_table("Fig 12 — ablation (50% distributed)",
                    ["variant", "skew", "tput (tps)", "p99 (ms)", "abort (%)"], rows)
    return out


# -------------------------------------------------------------------- Fig. 13
def fig13_yugabyte(contentions: Sequence[str] = ("low", "medium", "high"),
                   duration_ms: float = QUICK_DURATION_MS,
                   terminals: int = QUICK_TERMINALS,
                   report: bool = False) -> Dict:
    """Comparison against the YugabyteDB-like distributed database (Fig. 13)."""
    out: Dict[str, List] = {"ssp": [], "geotp": [], "yugabyte": []}
    for contention in contentions:
        skew = CONTENTION_SKEW[contention]
        for system in out:
            result = _run(system, ycsb=_ycsb(skew=skew), duration_ms=duration_ms,
                          terminals=terminals)
            out[system].append((contention, round(result.throughput_tps, 1),
                                round(result.average_latency_ms, 1)))
    if report:
        rows = [(system, contention, tput, latency)
                for system, points in out.items()
                for contention, tput, latency in points]
        print_table("Fig 13 — vs YugabyteDB",
                    ["system", "contention", "tput (tps)", "avg latency (ms)"], rows)
    return out


# -------------------------------------------------------------------- Fig. 14
def fig14_length_and_rounds(lengths: Sequence[int] = (5, 15, 25),
                            rounds: Sequence[int] = (1, 3, 6),
                            duration_ms: float = QUICK_DURATION_MS,
                            terminals: int = QUICK_TERMINALS,
                            report: bool = False) -> Dict:
    """Impact of transaction length and interaction rounds (Fig. 14)."""
    length_series: Dict[str, List] = {"ssp": [], "geotp": []}
    for system in length_series:
        for length in lengths:
            result = _run(system, ycsb=_ycsb(operations_per_transaction=length),
                          duration_ms=duration_ms, terminals=terminals)
            length_series[system].append((length, round(result.throughput_tps, 1)))

    round_series: Dict[str, Dict[str, List]] = {"low": {}, "medium": {}}
    for contention in round_series:
        skew = CONTENTION_SKEW[contention]
        for system in ("ssp", "geotp"):
            round_series[contention][system] = []
            for round_count in rounds:
                result = _run(system, ycsb=_ycsb(
                    skew=skew, operations_per_transaction=max(6, round_count),
                    rounds=round_count), duration_ms=duration_ms, terminals=terminals)
                round_series[contention][system].append(
                    (round_count, round(result.throughput_tps, 1)))
    if report:
        print_table("Fig 14a — transaction length (medium contention)",
                    ["system", *[f"len {n}" for n in lengths]],
                    [(system, *[t for _l, t in points])
                     for system, points in length_series.items()])
        for contention, by_system in round_series.items():
            print_table(f"Fig 14b/c — interaction rounds ({contention} contention)",
                        ["system", *[f"{n} rounds" for n in rounds]],
                        [(system, *[t for _r, t in points])
                         for system, points in by_system.items()])
    return {"length": length_series, "rounds": round_series}


# -------------------------------------------------------------------- Fig. 15
def fig15_multi_region(duration_ms: float = QUICK_DURATION_MS,
                       terminals: int = QUICK_TERMINALS,
                       report: bool = False) -> Dict:
    """Single- versus multi-middleware deployment (Fig. 15)."""
    out = {}
    for system in ("ssp", "geotp"):
        single = _run(system, topology=TopologyConfig.paper_default(),
                      duration_ms=duration_ms, terminals=terminals)
        multi = _run(system, topology=TopologyConfig.multi_middleware(),
                     duration_ms=duration_ms, terminals=terminals)
        out[system] = {
            "single_middleware_tps": round(single.throughput_tps, 1),
            "multi_middleware_tps": round(multi.throughput_tps, 1),
        }
    if report:
        rows = [(system, data["single_middleware_tps"], data["multi_middleware_tps"])
                for system, data in out.items()]
        print_table("Fig 15 — clients in multiple regions",
                    ["system", "single-DM tput", "multi-DM tput"], rows)
    return out


# -------------------------------------------------------------------- Table I
HETEROGENEOUS_SCENARIOS = {
    "S1": ["mysql", "mysql", "mysql", "mysql"],
    "S2": ["postgresql", "mysql", "postgresql", "mysql"],
    "S3": ["postgresql", "postgresql", "postgresql", "postgresql"],
}


def table1_heterogeneous(ratios: Sequence[float] = (0.25, 0.75),
                         duration_ms: float = QUICK_DURATION_MS,
                         terminals: int = QUICK_TERMINALS,
                         report: bool = False) -> Dict:
    """Heterogeneous MySQL/PostgreSQL deployments (Table I)."""
    out: Dict[str, Dict] = {}
    for scenario, dialects in HETEROGENEOUS_SCENARIOS.items():
        out[scenario] = {}
        topology = TopologyConfig.paper_default(dialects=dialects)
        for ratio in ratios:
            for system in ("ssp", "geotp"):
                result = _run(system, ycsb=_ycsb(distributed_ratio=ratio),
                              topology=topology, duration_ms=duration_ms,
                              terminals=terminals)
                out[scenario][(system, ratio)] = {
                    "throughput_tps": round(result.throughput_tps, 1),
                    "avg_latency_ms": round(result.average_latency_ms, 1),
                }
    if report:
        rows = []
        for scenario, cells in out.items():
            for (system, ratio), data in cells.items():
                rows.append((scenario, system, f"{int(ratio * 100)}%",
                             data["throughput_tps"], data["avg_latency_ms"]))
        print_table("Table I — heterogeneous deployments",
                    ["scenario", "system", "dist ratio", "tput (tps)", "avg latency (ms)"],
                    rows)
    return out


# ------------------------------------------------------- extra ablation benches
def extra_design_ablations(duration_ms: float = QUICK_DURATION_MS,
                           terminals: int = QUICK_TERMINALS,
                           report: bool = False) -> Dict:
    """Sensitivity of GeoTP to its own design knobs (beyond the paper's figures)."""
    out = {"ewma_alpha": [], "hotspot_capacity": [], "admission_retries": []}
    for alpha in (0.2, 0.8):
        result = _run("geotp", geotp=GeoTPConfig(ewma_alpha=alpha),
                      duration_ms=duration_ms, terminals=terminals)
        out["ewma_alpha"].append((alpha, round(result.throughput_tps, 1)))
    for capacity in (64, 4096):
        result = _run("geotp", geotp=GeoTPConfig(hotspot_capacity=capacity),
                      ycsb=_ycsb(skew=CONTENTION_SKEW["high"]),
                      duration_ms=duration_ms, terminals=terminals)
        out["hotspot_capacity"].append((capacity, round(result.throughput_tps, 1)))
    for retries in (0, 10):
        result = _run("geotp", geotp=GeoTPConfig(admission_max_retries=retries),
                      ycsb=_ycsb(skew=CONTENTION_SKEW["high"]),
                      duration_ms=duration_ms, terminals=terminals)
        out["admission_retries"].append((retries, round(result.throughput_tps, 1)))
    if report:
        for knob, points in out.items():
            print_table(f"Design ablation — {knob}", [knob, "tput (tps)"], points)
    return out
